#include "src/harness/scenario.h"

#include <algorithm>
#include <utility>

#include "src/cluster/pod_workloads.h"
#include "src/util/assert.h"
#include "src/util/str.h"

namespace arv::harness {

JvmScenario::JvmScenario(const container::HostConfig& host_config)
    : host_(std::make_unique<container::Host>(host_config)),
      runtime_(std::make_unique<container::ContainerRuntime>(*host_)) {}

std::size_t JvmScenario::add(const JvmInstanceConfig& config) {
  container::Container& target = runtime_->run(config.container, "java");
  containers_.push_back(&target);
  jvms_.push_back(
      std::make_unique<jvm::Jvm>(*host_, target, config.flags, config.workload));
  return jvms_.size() - 1;
}

void JvmScenario::add_cpu_hog(const container::ContainerConfig& config, int threads,
                              SimDuration cpu_budget) {
  container::ContainerConfig hog_config = config;
  if (hog_config.name.empty()) {
    hog_config.name = strf("cpu-hog-%d", hog_counter_++);
  }
  container::Container& target = runtime_->run(hog_config, "sysbench");
  cpu_hogs_.push_back(
      std::make_unique<workloads::CpuHog>(*host_, target, threads, cpu_budget));
}

void JvmScenario::add_mem_hog(const container::ContainerConfig& config,
                              Bytes footprint, Bytes charge_per_sec) {
  container::ContainerConfig hog_config = config;
  if (hog_config.name.empty()) {
    hog_config.name = strf("mem-hog-%d", hog_counter_++);
  }
  container::Container& target = runtime_->run(hog_config, "memhog");
  mem_hogs_.push_back(std::make_unique<workloads::MemHog>(*host_, target, footprint,
                                                          charge_per_sec));
}

void JvmScenario::run(SimDuration deadline) {
  ARV_ASSERT_MSG(try_run(deadline),
                 "scenario deadline exceeded before all JVMs finished");
}

bool JvmScenario::try_run(SimDuration deadline) {
  const SimTime limit = host_->now() + deadline;
  return host_->engine().run_until(
      [this] {
        return std::all_of(jvms_.begin(), jvms_.end(),
                           [](const auto& j) { return j->finished(); });
      },
      limit);
}

std::vector<JvmRunResult> JvmScenario::results() const {
  std::vector<JvmRunResult> out;
  out.reserve(jvms_.size());
  for (std::size_t i = 0; i < jvms_.size(); ++i) {
    out.push_back(JvmRunResult{containers_[i]->name(), jvms_[i]->workload().name,
                               jvms_[i]->stats()});
  }
  return out;
}

OmpScenario::OmpScenario(const container::HostConfig& host_config)
    : host_(std::make_unique<container::Host>(host_config)),
      runtime_(std::make_unique<container::ContainerRuntime>(*host_)) {}

std::size_t OmpScenario::add(const OmpInstanceConfig& config) {
  container::Container& target = runtime_->run(config.container, "omp");
  containers_.push_back(&target);
  processes_.push_back(std::make_unique<omp::OmpProcess>(
      *host_, target, config.strategy, config.workload, config.fixed_threads));
  return processes_.size() - 1;
}

void OmpScenario::run(SimDuration deadline) {
  const SimTime limit = host_->now() + deadline;
  const bool done = host_->engine().run_until(
      [this] {
        return std::all_of(processes_.begin(), processes_.end(),
                           [](const auto& p) { return p->finished(); });
      },
      limit);
  ARV_ASSERT_MSG(done, "scenario deadline exceeded before all programs finished");
}

std::vector<OmpRunResult> OmpScenario::results() const {
  std::vector<OmpRunResult> out;
  out.reserve(processes_.size());
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    out.push_back(OmpRunResult{containers_[i]->name(),
                               processes_[i]->workload().name,
                               processes_[i]->stats()});
  }
  return out;
}

FleetScenario::FleetScenario(cluster::ClusterConfig config)
    : cluster_(config), scheduler_(cluster_) {}

int FleetScenario::add_host(container::HostConfig host_config) {
  host_config.tick = cluster_.config().tick;
  return cluster_.add_host(host_config);
}

void FleetScenario::use_placement(std::string strategy) {
  ARV_ASSERT_MSG(cluster::PlacementRegistry::instance().has(strategy),
                 "unknown placement strategy");
  default_strategy_ = std::move(strategy);
}

int FleetScenario::place_pod(const std::string& strategy,
                             container::K8sResources resources,
                             cluster::WorkloadFactory factory) {
  cluster::PodSpec spec;
  spec.resources = resources;
  return scheduler_.place(strategy, std::move(spec), std::move(factory));
}

int FleetScenario::place_pod(container::K8sResources resources,
                             cluster::WorkloadFactory factory) {
  return place_pod(default_strategy_, resources, std::move(factory));
}

int FleetScenario::place_web_pod(const std::string& strategy,
                                 container::K8sResources resources,
                                 server::WebConfig web) {
  const int pod = place_pod(strategy, resources, cluster::web_replica(web));
  if (pod >= 0 && router_ != nullptr) {
    router_->add_replica(pod);
  }
  return pod;
}

int FleetScenario::place_web_pod(container::K8sResources resources,
                                 server::WebConfig web) {
  return place_web_pod(default_strategy_, resources, web);
}

void FleetScenario::enable_profiles(cluster::ProfileConfig config) {
  ARV_ASSERT_MSG(profiles_ == nullptr, "profiles already enabled");
  profiles_ = std::make_unique<cluster::ProfileStore>(cluster_, config);
  cluster_.add_component(profiles_.get());
}

void FleetScenario::enable_router(double arrivals_per_sec) {
  cluster::RouterConfig config;
  config.arrivals_per_sec = arrivals_per_sec;
  enable_router(config);
}

void FleetScenario::enable_router(cluster::RouterConfig config) {
  ARV_ASSERT_MSG(router_ == nullptr, "router already enabled");
  router_ = std::make_unique<cluster::RequestRouter>(cluster_, config);
  cluster_.add_component(router_.get());
}

void FleetScenario::enable_recovery(cluster::DetectorConfig detector,
                                    cluster::RestartConfig restart) {
  ARV_ASSERT_MSG(detector_ == nullptr, "recovery already enabled");
  detector_ = std::make_unique<cluster::FailureDetector>(cluster_, detector);
  restarts_ = std::make_unique<cluster::RestartManager>(cluster_, restart);
  cluster_.add_component(detector_.get());
  cluster_.add_component(restarts_.get());
}

void FleetScenario::enable_faults(cluster::FaultPlan plan) {
  ARV_ASSERT_MSG(injector_ == nullptr, "faults already enabled");
  injector_ =
      std::make_unique<cluster::FaultInjector>(cluster_, std::move(plan));
  cluster_.add_component(injector_.get());
}

FleetScenario::Tenant* FleetScenario::find_tenant(const std::string& name) {
  for (Tenant& tenant : tenants_) {
    if (tenant.name == name) {
      return &tenant;
    }
  }
  return nullptr;
}

void FleetScenario::add_tenant(const std::string& name,
                               cluster::RouterConfig router) {
  ARV_ASSERT_MSG(!name.empty(), "tenant needs a name");
  ARV_ASSERT_MSG(find_tenant(name) == nullptr, "tenant already declared");
  ARV_ASSERT_MSG(driver_ == nullptr, "add tenants before use_trace()");
  // Tenants are externally driven: the trace engine owns their arrivals.
  router.arrivals_per_sec = 0;
  Tenant tenant;
  tenant.name = name;
  tenant.router = std::make_unique<cluster::RequestRouter>(cluster_, router);
  cluster_.add_component(tenant.router.get());
  if (admission_ != nullptr) {
    admission_->register_tenant(name, *tenant.router);
  }
  tenants_.push_back(std::move(tenant));
}

void FleetScenario::enable_admission(cluster::AdmissionConfig config) {
  ARV_ASSERT_MSG(admission_ == nullptr, "admission already enabled");
  admission_ =
      std::make_unique<cluster::AdmissionController>(cluster_, config);
  cluster_.add_component(admission_.get());
  if (router_ != nullptr) {
    admission_->register_tenant("default", *router_);
  }
  for (Tenant& tenant : tenants_) {
    admission_->register_tenant(tenant.name, *tenant.router);
  }
}

int FleetScenario::place_tenant_web_pod(const std::string& tenant,
                                        container::K8sResources resources,
                                        server::WebConfig web,
                                        cluster::PodSpec spec_template) {
  Tenant* t = find_tenant(tenant);
  ARV_ASSERT_MSG(t != nullptr, "unknown tenant");
  cluster::PodSpec spec = std::move(spec_template);
  spec.resources = resources;
  spec.service = tenant;
  web.arrivals_per_sec = 0;  // replicas behind a router never self-generate
  const int pod = scheduler_.place(default_strategy_, std::move(spec),
                                   cluster::web_replica(web));
  if (pod >= 0) {
    t->router->add_replica(pod);
  }
  return pod;
}

void FleetScenario::use_trace(load::CompiledTrace trace,
                              load::DriverConfig config) {
  ARV_ASSERT_MSG(driver_ == nullptr, "trace already in use");
  driver_ = std::make_unique<load::OpenLoopDriver>(cluster_, std::move(trace),
                                                   config);
  for (Tenant& tenant : tenants_) {
    if (driver_->trace().find(tenant.name) != nullptr) {
      driver_->bind(tenant.name, *tenant.router);
    }
  }
  cluster_.add_component(driver_.get());
}

void FleetScenario::declare_slo(const std::string& tenant, load::SloTarget target,
                                load::SloConfig config) {
  Tenant* t = find_tenant(tenant);
  ARV_ASSERT_MSG(t != nullptr, "unknown tenant");
  if (slo_ == nullptr) {
    // Registered after the driver (use_trace first), so every accounting
    // round reads post-injection state of the same tick.
    slo_ = std::make_unique<load::SloAccountant>(cluster_, config);
    cluster_.add_component(slo_.get());
  }
  slo_->declare(tenant, *t->router, target);
  if (admission_ != nullptr) {
    // The SLO declaration is the source of truth for how critical a tenant
    // is to the front door.
    admission_->set_criticality(
        tenant, cluster::criticality_for_slo(target.availability_permille));
  }
}

void FleetScenario::enable_tenant_hpa(const std::string& tenant,
                                      cluster::PodSpec replica_template,
                                      server::WebConfig web,
                                      cluster::HpaConfig config) {
  Tenant* t = find_tenant(tenant);
  ARV_ASSERT_MSG(t != nullptr, "unknown tenant");
  ARV_ASSERT_MSG(t->hpa == nullptr, "tenant hpa already enabled");
  if (replica_template.name.empty()) {
    replica_template.name = tenant;
  }
  replica_template.service = tenant;
  t->hpa = std::make_unique<cluster::HorizontalAutoscaler>(
      cluster_, *t->router, std::move(replica_template), web, config);
  cluster_.add_component(t->hpa.get());
}

cluster::RequestRouter* FleetScenario::tenant_router(const std::string& tenant) {
  Tenant* t = find_tenant(tenant);
  return t == nullptr ? nullptr : t->router.get();
}

cluster::HorizontalAutoscaler* FleetScenario::tenant_hpa(
    const std::string& tenant) {
  Tenant* t = find_tenant(tenant);
  return t == nullptr ? nullptr : t->hpa.get();
}

void FleetScenario::enable_hpa(cluster::PodSpec replica_template,
                               server::WebConfig web,
                               cluster::HpaConfig config) {
  ARV_ASSERT_MSG(hpa_ == nullptr, "hpa already enabled");
  ARV_ASSERT_MSG(router_ != nullptr, "enable_router() before enable_hpa()");
  hpa_ = std::make_unique<cluster::HorizontalAutoscaler>(
      cluster_, *router_, std::move(replica_template), web, config);
  cluster_.add_component(hpa_.get());
}

void FleetScenario::enable_vpa(cluster::VpaConfig config) {
  ARV_ASSERT_MSG(vpa_ == nullptr, "vpa already enabled");
  vpa_ = std::make_unique<cluster::VerticalRecommender>(cluster_, config);
  cluster_.add_component(vpa_.get());
}

void FleetScenario::enable_cluster_autoscaler(cluster::CaConfig config) {
  ARV_ASSERT_MSG(ca_ == nullptr, "cluster autoscaler already enabled");
  ca_ = std::make_unique<cluster::ClusterAutoscaler>(cluster_, config);
  cluster_.add_component(ca_.get());
}

void FleetScenario::enable_rebalancer(cluster::RebalanceConfig config) {
  ARV_ASSERT_MSG(rebalancer_ == nullptr, "rebalancer already enabled");
  rebalancer_ = std::make_unique<cluster::Rebalancer>(cluster_, config);
  cluster_.add_component(rebalancer_.get());
}

HeapTimeline::HeapTimeline(container::Host& host, const jvm::Jvm& jvm,
                           SimDuration interval)
    : host_(host), jvm_(jvm), interval_(interval) {
  ARV_ASSERT(interval > 0);
  schedule_next();
}

void HeapTimeline::schedule_next() {
  host_.engine().schedule_after(interval_, [this] {
    samples_.push_back(jvm_.sample_heap());
    schedule_next();
  });
}

}  // namespace arv::harness
