// Control-group model: the resource-limit configuration surface of the
// simulated kernel.
//
// Mirrors the cgroups-v1 knobs the paper uses (§2.1): cpu.shares,
// cpu.cfs_period_us / cpu.cfs_quota_us, cpuset.cpus, memory.limit_in_bytes,
// memory.soft_limit_in_bytes. A change-notification hook reproduces the
// paper's kernel modification (§3.2): "we modify the source code of cgroups
// to invoke ns_monitor if a sys_namespace exists for a control group and
// there is a change to the cgroups settings".
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/util/cpuset.h"
#include "src/util/types.h"

namespace arv::cgroup {

using CgroupId = std::int32_t;
inline constexpr CgroupId kRootCgroup = 0;

/// CPU-controller configuration (cpu + cpuset controllers combined).
struct CpuConfig {
  /// cpu.shares — relative weight among siblings. Kernel default is 1024.
  std::int64_t shares = 1024;
  /// cpu.cfs_period_us — bandwidth accounting period.
  SimDuration cfs_period_us = 100'000;
  /// cpu.cfs_quota_us — CPU time usable per period; kUnlimited disables the cap.
  std::int64_t cfs_quota_us = kUnlimited;
  /// cpuset.cpus — permitted CPUs; an empty mask means "all online CPUs".
  CpuSet cpuset;

  /// quota/period as a CPU count, rounded up ("a quota equivalent to 4
  /// cores"); returns `online` when no quota is set.
  int quota_cpus(int online) const;
};

/// Memory-controller configuration.
struct MemConfig {
  /// memory.limit_in_bytes — hard limit; exceeding it means swap or OOM.
  Bytes limit_in_bytes = kUnlimited;
  /// memory.soft_limit_in_bytes — reclaim target under global pressure.
  Bytes soft_limit_in_bytes = kUnlimited;
};

enum class EventKind { kCreated, kDestroyed, kCpuChanged, kMemChanged };

struct Event {
  EventKind kind;
  CgroupId id;
  /// Name of the affected cgroup. For kDestroyed the cgroup is already gone
  /// from the tree when listeners run, so the name travels with the event.
  std::string name;
};

/// One control group. Configuration lives here; runtime accounting (CPU usage,
/// memory charges) lives in the scheduler and memory manager, keyed by id.
class Cgroup {
 public:
  Cgroup(CgroupId id, std::string name, CgroupId parent)
      : id_(id), name_(std::move(name)), parent_(parent) {}

  CgroupId id() const { return id_; }
  const std::string& name() const { return name_; }
  CgroupId parent() const { return parent_; }
  const std::vector<CgroupId>& children() const { return children_; }

  const CpuConfig& cpu() const { return cpu_; }
  const MemConfig& mem() const { return mem_; }

 private:
  friend class Tree;

  CgroupId id_;
  std::string name_;
  CgroupId parent_;
  std::vector<CgroupId> children_;
  CpuConfig cpu_;
  MemConfig mem_;
};

/// The cgroup hierarchy plus the notification fan-out.
class Tree {
 public:
  using Listener = std::function<void(const Event&)>;

  /// `online_cpus` bounds cpuset masks and share-fraction math.
  explicit Tree(int online_cpus);

  int online_cpus() const { return online_cpus_; }

  /// Create a child cgroup. Names must be unique among siblings.
  CgroupId create(const std::string& name, CgroupId parent = kRootCgroup);

  /// Destroy a leaf cgroup (children must be removed first).
  void destroy(CgroupId id);

  bool exists(CgroupId id) const;
  const Cgroup& get(CgroupId id) const;

  /// Look up a direct child of `parent` by name; -1 if absent.
  CgroupId find(const std::string& name, CgroupId parent = kRootCgroup) const;

  // --- knobs; each setter validates and fires kCpuChanged/kMemChanged ---
  void set_cpu_shares(CgroupId id, std::int64_t shares);
  void set_cfs_quota(CgroupId id, std::int64_t quota_us);
  void set_cfs_period(CgroupId id, SimDuration period_us);
  void set_cpuset(CgroupId id, const CpuSet& mask);
  void set_mem_limit(CgroupId id, Bytes limit);
  void set_mem_soft_limit(CgroupId id, Bytes soft_limit);

  /// Effective constraints after walking the path to the root: cpuset is the
  /// intersection, quota-derived CPU cap is the minimum. Shares apply at the
  /// cgroup itself (competition is among top-level containers in this model).
  CpuSet effective_cpuset(CgroupId id) const;
  int effective_quota_cpus(CgroupId id) const;

  /// The tightest CFS bandwidth setting on the path to the root (smallest
  /// quota/period ratio): {cfs_quota_us, cfs_period_us}. Quota is kUnlimited
  /// when no ancestor (or self) sets one. This is what the scheduler's
  /// period accounting must enforce for nested cgroups.
  struct Bandwidth {
    std::int64_t quota_us = kUnlimited;
    SimDuration period_us = 100'000;
  };
  Bandwidth effective_bandwidth(CgroupId id) const;

  /// All currently existing non-root cgroups (stable id order).
  std::vector<CgroupId> all_ids() const;

  /// Register a settings-change listener (the paper's ns_monitor hook).
  void subscribe(Listener listener);

  /// Sum of cpu.shares over all non-root cgroups — the denominator of
  /// Algorithm 1's share fraction. O(1): the sum is maintained across
  /// create/destroy/set_cpu_shares instead of being re-derived per query,
  /// so per-event bound refreshes don't cost O(containers) each.
  std::int64_t total_shares() const { return total_shares_; }

 private:
  Cgroup& get_mutable(CgroupId id);
  void notify(EventKind kind, CgroupId id, const std::string& name);

  int online_cpus_;
  CgroupId next_id_ = 1;
  std::vector<std::unique_ptr<Cgroup>> slots_;  // index == id; null when destroyed
  std::vector<Listener> listeners_;
  std::int64_t total_shares_ = 0;  // Σ cpu.shares over live non-root cgroups
};

}  // namespace arv::cgroup
