#include "src/cgroup/cgroup.h"

#include <algorithm>

#include "src/util/assert.h"

namespace arv::cgroup {

int CpuConfig::quota_cpus(int online) const {
  if (cfs_quota_us == kUnlimited || cfs_quota_us <= 0) {
    return online;
  }
  const auto cpus = ceil_div(cfs_quota_us, cfs_period_us);
  return static_cast<int>(std::min<std::int64_t>(cpus, online));
}

Tree::Tree(int online_cpus) : online_cpus_(online_cpus) {
  ARV_ASSERT(online_cpus > 0 && online_cpus <= CpuSet::kMaxCpus);
  // Slot 0 is the root cgroup; it always exists and is never destroyed.
  slots_.push_back(std::make_unique<Cgroup>(kRootCgroup, "/", kRootCgroup));
}

CgroupId Tree::create(const std::string& name, CgroupId parent) {
  ARV_ASSERT(exists(parent));
  ARV_ASSERT_MSG(find(name, parent) < 0, "sibling cgroup names must be unique");
  const CgroupId id = next_id_++;
  slots_.push_back(std::make_unique<Cgroup>(id, name, parent));
  get_mutable(parent).children_.push_back(id);
  total_shares_ += get(id).cpu().shares;
  notify(EventKind::kCreated, id, name);
  return id;
}

void Tree::destroy(CgroupId id) {
  ARV_ASSERT_MSG(id != kRootCgroup, "cannot destroy the root cgroup");
  ARV_ASSERT(exists(id));
  ARV_ASSERT_MSG(get(id).children().empty(), "destroy children first");
  auto& siblings = get_mutable(get(id).parent()).children_;
  siblings.erase(std::remove(siblings.begin(), siblings.end(), id), siblings.end());
  // Remove the cgroup BEFORE notifying so that listeners recomputing
  // aggregate state (total shares, sibling counts) see the post-destroy
  // world; the name travels with the event for cleanup handlers.
  const std::string name = get(id).name();
  total_shares_ -= get(id).cpu().shares;
  slots_[static_cast<std::size_t>(id)].reset();
  notify(EventKind::kDestroyed, id, name);
}

bool Tree::exists(CgroupId id) const {
  return id >= 0 && static_cast<std::size_t>(id) < slots_.size() &&
         slots_[static_cast<std::size_t>(id)] != nullptr;
}

const Cgroup& Tree::get(CgroupId id) const {
  ARV_ASSERT(exists(id));
  return *slots_[static_cast<std::size_t>(id)];
}

Cgroup& Tree::get_mutable(CgroupId id) {
  ARV_ASSERT(exists(id));
  return *slots_[static_cast<std::size_t>(id)];
}

CgroupId Tree::find(const std::string& name, CgroupId parent) const {
  if (!exists(parent)) {
    return -1;
  }
  for (const CgroupId child : get(parent).children()) {
    if (get(child).name() == name) {
      return child;
    }
  }
  return -1;
}

void Tree::set_cpu_shares(CgroupId id, std::int64_t shares) {
  ARV_ASSERT_MSG(shares >= 2, "kernel clamps cpu.shares to >= 2");
  if (id != kRootCgroup) {
    total_shares_ += shares - get(id).cpu().shares;
  }
  get_mutable(id).cpu_.shares = shares;
  notify(EventKind::kCpuChanged, id, get(id).name());
}

void Tree::set_cfs_quota(CgroupId id, std::int64_t quota_us) {
  ARV_ASSERT_MSG(quota_us == kUnlimited || quota_us > 0, "quota must be positive");
  get_mutable(id).cpu_.cfs_quota_us = quota_us;
  notify(EventKind::kCpuChanged, id, get(id).name());
}

void Tree::set_cfs_period(CgroupId id, SimDuration period_us) {
  ARV_ASSERT_MSG(period_us >= 1000, "kernel requires cfs_period_us >= 1ms");
  get_mutable(id).cpu_.cfs_period_us = period_us;
  notify(EventKind::kCpuChanged, id, get(id).name());
}

void Tree::set_cpuset(CgroupId id, const CpuSet& mask) {
  ARV_ASSERT_MSG(mask.span() <= online_cpus_, "cpuset exceeds online CPUs");
  get_mutable(id).cpu_.cpuset = mask;
  notify(EventKind::kCpuChanged, id, get(id).name());
}

void Tree::set_mem_limit(CgroupId id, Bytes limit) {
  ARV_ASSERT(limit > 0);
  get_mutable(id).mem_.limit_in_bytes = limit;
  notify(EventKind::kMemChanged, id, get(id).name());
}

void Tree::set_mem_soft_limit(CgroupId id, Bytes soft_limit) {
  ARV_ASSERT(soft_limit > 0);
  get_mutable(id).mem_.soft_limit_in_bytes = soft_limit;
  notify(EventKind::kMemChanged, id, get(id).name());
}

CpuSet Tree::effective_cpuset(CgroupId id) const {
  CpuSet mask = CpuSet::all(online_cpus_);
  for (CgroupId cur = id; cur != kRootCgroup; cur = get(cur).parent()) {
    const CpuSet& own = get(cur).cpu().cpuset;
    if (!own.empty()) {
      mask = mask & own;
    }
  }
  return mask;
}

int Tree::effective_quota_cpus(CgroupId id) const {
  int cap = online_cpus_;
  for (CgroupId cur = id; cur != kRootCgroup; cur = get(cur).parent()) {
    cap = std::min(cap, get(cur).cpu().quota_cpus(online_cpus_));
  }
  return cap;
}

Tree::Bandwidth Tree::effective_bandwidth(CgroupId id) const {
  Bandwidth best;
  double best_ratio = std::numeric_limits<double>::infinity();
  for (CgroupId cur = id; cur != kRootCgroup; cur = get(cur).parent()) {
    const auto& cfg = get(cur).cpu();
    if (cfg.cfs_quota_us == kUnlimited) {
      continue;
    }
    const double ratio = static_cast<double>(cfg.cfs_quota_us) /
                         static_cast<double>(cfg.cfs_period_us);
    if (ratio < best_ratio) {
      best_ratio = ratio;
      best.quota_us = cfg.cfs_quota_us;
      best.period_us = cfg.cfs_period_us;
    }
  }
  return best;
}

std::vector<CgroupId> Tree::all_ids() const {
  std::vector<CgroupId> ids;
  for (std::size_t slot = 1; slot < slots_.size(); ++slot) {
    if (slots_[slot] != nullptr) {
      ids.push_back(static_cast<CgroupId>(slot));
    }
  }
  return ids;
}

void Tree::subscribe(Listener listener) { listeners_.push_back(std::move(listener)); }

void Tree::notify(EventKind kind, CgroupId id, const std::string& name) {
  const Event event{kind, id, name};
  for (const auto& listener : listeners_) {
    listener(event);
  }
}

}  // namespace arv::cgroup
