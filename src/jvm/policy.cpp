#include "src/jvm/policy.h"

#include <algorithm>

#include "src/jvm/gc_tasks.h"
#include "src/util/assert.h"

namespace arv::jvm {

int jdk9_cpu_count(const container::Host& host, cgroup::CgroupId id) {
  // "it detects if there is a CPU mask associated with the Java process ...
  // If CPU affinity is found, the JDK calculates the number of CPUs the JVM
  // is permitted to access" (§5.2); quota is the fallback detection path.
  const auto& tree = const_cast<container::Host&>(host).cgroups();
  const auto& cfg = tree.get(id).cpu();
  if (!cfg.cpuset.empty()) {
    return tree.effective_cpuset(id).count();
  }
  if (cfg.cfs_quota_us != kUnlimited) {
    return tree.effective_quota_cpus(id);
  }
  return tree.online_cpus();
}

int jdk10_cpu_count(const container::Host& host, cgroup::CgroupId id) {
  auto& tree = const_cast<container::Host&>(host).cgroups();
  const int base = jdk9_cpu_count(host, id);
  // JVM 10 "uses an algorithm similar to that in Algorithm 1 (line 4) to
  // derive a core count based on CPU share" — static at launch.
  const std::int64_t shares = tree.get(id).cpu().shares;
  const std::int64_t total = std::max<std::int64_t>(1, tree.total_shares());
  const int by_share =
      static_cast<int>(ceil_div(shares * tree.online_cpus(), total));
  return std::max(1, std::min(base, by_share));
}

namespace {

Bytes detected_phys_memory(container::Host& host, proc::Pid pid) {
  const long pages = host.sysfs().sysconf(pid, vfs::Sysconf::kPhysPages);
  const long page_size = host.sysfs().sysconf(pid, vfs::Sysconf::kPageSize);
  return static_cast<Bytes>(pages) * static_cast<Bytes>(page_size);
}

}  // namespace

LaunchDecision decide_launch(container::Host& host, container::Container& target,
                             proc::Pid pid, const JvmFlags& flags,
                             const JavaWorkload& workload) {
  LaunchDecision decision;
  const cgroup::CgroupId cg = target.cgroup();
  const Bytes hard_limit = host.cgroups().get(cg).mem().limit_in_bytes;

  // --- GC worker pool (N) ---------------------------------------------------
  switch (flags.kind) {
    case JvmKind::kVanilla8:
      // sysconf through the (possibly virtual) sysfs; a stock container
      // answers with the host CPU count.
      decision.gc_worker_pool = hotspot_default_gc_threads(static_cast<int>(
          host.sysfs().sysconf(pid, vfs::Sysconf::kNProcessorsOnln)));
      break;
    case JvmKind::kJdk9:
      decision.gc_worker_pool =
          hotspot_default_gc_threads(jdk9_cpu_count(host, cg));
      break;
    case JvmKind::kJdk10:
      decision.gc_worker_pool =
          hotspot_default_gc_threads(jdk10_cpu_count(host, cg));
      break;
    case JvmKind::kOptTuned:
      ARV_ASSERT_MSG(flags.fixed_gc_threads >= 1,
                     "opt-tuned JVM requires fixed_gc_threads");
      decision.gc_worker_pool = flags.fixed_gc_threads;
      break;
    case JvmKind::kAdaptive:
      // §4.1: "we launch as many GC threads as possible according to the
      // number of online CPUs, retaining the potential to expand".
      decision.gc_worker_pool =
          hotspot_default_gc_threads(host.scheduler().online_cpus());
      break;
  }

  // --- heap sizes -------------------------------------------------------------
  const Bytes min_heap = min_heap_of(workload);
  if (flags.xmx > 0) {
    decision.max_heap = flags.xmx;
  } else {
    switch (flags.kind) {
      case JvmKind::kVanilla8:
        // MaxHeapSize = phys/4; through the virtual sysfs this is E_MEM/4.
        decision.max_heap = detected_phys_memory(host, pid) / 4;
        break;
      case JvmKind::kJdk9:
      case JvmKind::kJdk10:
        // "JDK 9 ... limits the JVM heap size to the hard memory limit":
        // MaxRAM clamps to the hard limit, then MaxRAMFraction=4 applies.
        decision.max_heap = (hard_limit != kUnlimited
                                 ? hard_limit
                                 : host.memory().total_ram()) / 4;
        break;
      case JvmKind::kOptTuned:
        decision.max_heap = min_heap * 3;
        break;
      case JvmKind::kAdaptive:
        // §4.2: "setting the original reserved size MaxHeapSize to a
        // sufficiently large value, close to the size of physical memory".
        decision.max_heap = host.memory().total_ram() * 9 / 10;
        break;
    }
  }

  if (flags.kind == JvmKind::kAdaptive && flags.elastic_heap) {
    const Bytes e_mem = detected_phys_memory(host, pid);  // effective memory
    decision.initial_virtual_max = std::max(min_heap, e_mem);
  } else {
    decision.initial_virtual_max = decision.max_heap;
  }

  decision.initial_heap =
      flags.xms > 0 ? flags.xms
                    : std::max<Bytes>(8 * units::MiB,
                                      decision.initial_virtual_max / 4);
  decision.initial_heap = std::min(decision.initial_heap, decision.max_heap);
  return decision;
}

int decide_gc_threads(container::Host& host, proc::Pid pid, const JvmFlags& flags,
                      int worker_pool, int mutator_threads, Bytes heap_committed) {
  int threads = worker_pool;
  if (flags.dynamic_gc_threads) {
    threads = std::min(
        threads, hotspot_active_workers(worker_pool, mutator_threads, heap_committed));
  }
  if (flags.kind == JvmKind::kAdaptive) {
    // §4.1: N_gc = min(N, N_active, E_CPU) — E_CPU read through sysconf,
    // answered by the container's sys_namespace.
    const int e_cpu = static_cast<int>(
        host.sysfs().sysconf(pid, vfs::Sysconf::kNProcessorsOnln));
    threads = std::min(threads, std::max(1, e_cpu));
  }
  return std::max(1, threads);
}

}  // namespace arv::jvm
