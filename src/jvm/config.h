// JVM model configuration: which JDK generation's container-awareness the
// instance emulates, its command-line-ish flags, and the cost-model
// coefficients of the synthetic Java workload it runs.
#pragma once

#include <string>

#include "src/util/types.h"

namespace arv::jvm {

/// Which container-awareness generation this JVM instance emulates (§2.2,
/// §5): how it probes CPUs/memory at launch and per GC.
enum class JvmKind {
  /// JDK 8 and earlier: probes online CPUs and physical memory through
  /// sysconf; completely container-oblivious.
  kVanilla8,
  /// JDK 9: reads the container's static CPU limit (cpuset mask, else
  /// cfs_quota) and hard memory limit at launch.
  kJdk9,
  /// JDK 10: additionally derives a static CPU count from cpu.shares.
  kJdk10,
  /// Hand-optimized baseline: every knob pinned by the experimenter.
  kOptTuned,
  /// The paper's system: launch-time maximum pool + per-GC adjustment from
  /// the adaptive resource view (effective CPU / effective memory).
  kAdaptive,
};

/// Launch flags (the subset of java(1) options the experiments vary).
struct JvmFlags {
  JvmKind kind = JvmKind::kVanilla8;

  /// -XX:+UseDynamicNumberOfGCThreads — HotSpot's existing heuristic that
  /// activates only min(N, N_active) workers per collection.
  bool dynamic_gc_threads = true;

  /// §4.2 elastic heap (VirtualMax / YoungMax / OldMax); only meaningful
  /// with kAdaptive.
  bool elastic_heap = false;

  /// -Xms / -Xmx; 0 means "let the policy decide" (ergonomics).
  Bytes xms = 0;
  Bytes xmx = 0;

  /// kOptTuned: exact GC thread count to use for every collection.
  int fixed_gc_threads = 0;

  /// How often the elastic heap re-reads effective memory (paper: 10 s).
  SimDuration heap_poll_interval = 10 * units::sec;
};

/// Synthetic Java workload parameters (per-benchmark tables live in
/// src/workloads). The mutator is a fluid model: it performs CPU work,
/// allocates at a fixed rate per CPU-second, and keeps a fixed live set.
struct JavaWorkload {
  std::string name = "synthetic";

  /// Total mutator CPU time to complete the benchmark.
  SimDuration total_work = 10 * units::sec;

  /// Number of application (mutator) threads.
  int mutator_threads = 4;

  /// Allocation rate while mutating, bytes per CPU-second.
  Bytes alloc_per_cpu_sec = 256 * units::MiB;

  /// Steady-state live data (survives collections; bounds the min heap).
  Bytes live_set = 96 * units::MiB;

  /// Fraction of eden bytes still live at a minor collection.
  double survival_ratio = 0.10;

  /// GC cost: CPU time to scan one MiB of live data.
  SimDuration gc_cost_per_mib = 600;  // us

  /// Fixed CPU cost per collection (root scanning, termination...).
  SimDuration gc_fixed_cost = 2 * units::msec;

  /// Synchronization-overhead coefficient: each extra GC worker adds this
  /// fraction of serialized work (sub-linear GC scalability, [11, 29]).
  double gc_alpha = 0.03;

  /// Oversubscription penalty: efficiency divisor grows by this per GC
  /// thread beyond the CPUs actually granted (over-threading, §2.2).
  double gc_beta = 0.25;

  /// Fraction of the live set the mutator touches per CPU-second (drives
  /// swap-in traffic when pages were reclaimed).
  double touch_rate = 1.0;

  /// Fraction of every allocated byte that stays live forever — 0 for
  /// steady-state benchmarks, > 0 for leak-style workloads like the §5.3
  /// micro-benchmark (allocate 1 MiB, free 512 KiB per iteration => 0.5).
  double live_fraction_of_alloc = 0.0;
};

/// Derived quantity used by the experiments (§5.1: "heap sizes ... were set
/// to 3x of their respective minimum heap sizes").
inline Bytes min_heap_of(const JavaWorkload& w) {
  // Live set plus one survivor-sized slack, rounded to pages.
  return page_align_up(w.live_set + w.live_set / 4);
}

}  // namespace arv::jvm
