#include "src/jvm/gc_tasks.h"

#include <algorithm>
#include <cmath>

#include "src/util/assert.h"

namespace arv::jvm {

void GcTaskQueue::push(GcTask task) {
  ARV_ASSERT(task.work >= 0);
  tasks_.push_back(task);
}

void GcTaskQueue::clear() { tasks_.clear(); }

GcTask GcTaskQueue::pop() {
  ARV_ASSERT_MSG(!tasks_.empty(), "pop from empty GCTaskQueue");
  const GcTask task = tasks_.front();
  tasks_.pop_front();
  return task;
}

namespace {

/// Scan granularity: one ScavengeRootsTask per this many bytes, mirroring
/// HotSpot's stripe-sized task decomposition.
constexpr Bytes kBytesPerTask = 4 * units::MiB;

}  // namespace

void GcSession::begin(GcPhase phase, SimTime now, int workers, Bytes live_bytes,
                      SimDuration cost_per_mib, SimDuration fixed_cost,
                      double alpha, double beta) {
  ARV_ASSERT_MSG(phase_ == GcPhase::kIdle, "GC already in progress");
  ARV_ASSERT(phase != GcPhase::kIdle);
  ARV_ASSERT(workers >= 1);
  ARV_ASSERT(live_bytes >= 0);
  phase_ = phase;
  workers_ = workers;
  alpha_ = alpha;
  beta_ = beta;
  start_ = now;
  scanned_ = 0;
  cpu_spent_ = 0;
  queue_.clear();
  tasks_per_worker_.assign(static_cast<std::size_t>(workers), 0);
  next_worker_ = 0;

  // Fixed root work, split between the root-scanning task types.
  queue_.push({GcTaskKind::kOldToYoungRoots, fixed_cost / 2, 0});
  queue_.push({GcTaskKind::kScavengeRoots, fixed_cost / 4, 0});

  // Stripe the live data into scan tasks.
  const std::int64_t stripes = std::max<std::int64_t>(1, ceil_div(live_bytes, kBytesPerTask));
  const CpuTime scan_work = live_bytes * cost_per_mib / units::MiB;
  for (std::int64_t i = 0; i < stripes; ++i) {
    const Bytes lo = std::min<Bytes>(live_bytes, i * kBytesPerTask);
    const Bytes hi = std::min<Bytes>(live_bytes, (i + 1) * kBytesPerTask);
    if (hi == lo && live_bytes > 0) {
      continue;
    }
    queue_.push({GcTaskKind::kSteal, scan_work / std::max<std::int64_t>(1, stripes),
                 hi - lo});
  }

  // Reference processing + final (termination) work.
  queue_.push({GcTaskKind::kRefProc, fixed_cost / 8, 0});
  queue_.push({GcTaskKind::kFinal, fixed_cost / 8, 0});
}

Bytes GcSession::advance(CpuTime grant, SimDuration dt) {
  ARV_ASSERT(active());
  ARV_ASSERT(grant >= 0 && dt > 0);
  if (grant == 0 || queue_.empty()) {
    return 0;
  }
  cpu_spent_ += grant;

  // Efficiency curve: synchronization overhead per extra worker, plus the
  // over-threading penalty when woken workers exceed granted CPUs.
  const double granted_cpus =
      static_cast<double>(grant) / static_cast<double>(dt);
  const double oversub =
      std::max(0.0, static_cast<double>(workers_) - granted_cpus);
  const double efficiency = 1.0 /
                            (1.0 + alpha_ * static_cast<double>(workers_ - 1)) /
                            (1.0 + beta_ * oversub);
  CpuTime useful = static_cast<CpuTime>(static_cast<double>(grant) * efficiency);

  Bytes scanned_now = 0;
  while (!queue_.empty()) {
    const GcTask head = queue_.pop();
    if (head.work > useful) {
      // Partially processed: split the task and push the remainder back to
      // the front by re-pushing a shrunken copy (order preserved via deque
      // push to front is not exposed; track as carry against this task).
      const double frac = static_cast<double>(useful) / static_cast<double>(head.work);
      const Bytes part = static_cast<Bytes>(static_cast<double>(head.bytes_scanned) * frac);
      scanned_now += part;
      GcTask rest = head;
      rest.work -= useful;
      rest.bytes_scanned -= part;
      // Reinsert remainder at the head position.
      GcTaskQueue rebuilt;
      rebuilt.push(rest);
      while (!queue_.empty()) {
        rebuilt.push(queue_.pop());
      }
      queue_ = std::move(rebuilt);
      break;
    }
    useful -= head.work;
    scanned_now += head.bytes_scanned;
    // Dynamic work assignment bookkeeping: round-robin in the fluid model.
    tasks_per_worker_[next_worker_] += 1;
    next_worker_ = (next_worker_ + 1) % tasks_per_worker_.size();
  }
  scanned_ += scanned_now;
  return scanned_now;
}

GcSessionResult GcSession::finish(SimTime now) {
  ARV_ASSERT(active());
  ARV_ASSERT_MSG(queue_.empty(), "finishing a GC with tasks outstanding");
  GcSessionResult result;
  result.phase = phase_;
  result.start = start_;
  result.end = now;
  result.active_workers = workers_;
  result.bytes_scanned = scanned_;
  result.cpu_spent = cpu_spent_;
  phase_ = GcPhase::kIdle;
  return result;
}

int hotspot_default_gc_threads(int cpus) {
  ARV_ASSERT(cpus >= 1);
  if (cpus <= 8) {
    return cpus;
  }
  return 8 + (cpus - 8) * 5 / 8;
}

int hotspot_active_workers(int pool_size, int mutator_threads, Bytes heap_committed) {
  ARV_ASSERT(pool_size >= 1);
  // Bound by 2x mutators (HotSpot's "active workers by mutator demand") and
  // by one worker per HeapSizePerGCThread (64 MiB) of committed heap.
  const std::int64_t by_heap =
      std::max<std::int64_t>(1, ceil_div(heap_committed, 64 * units::MiB));
  const std::int64_t by_mutators = std::max(1, 2 * mutator_threads);
  const std::int64_t active = std::min(by_heap, by_mutators);
  return static_cast<int>(std::clamp<std::int64_t>(active, 1, pool_size));
}

}  // namespace arv::jvm
