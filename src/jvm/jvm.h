// Jvm — a mini-HotSpot running a synthetic Java workload inside a container.
//
// The JVM is a Schedulable: each tick the fair scheduler grants it CPU time,
// which it spends either mutating (performing application work, allocating
// into eden at the workload's allocation rate, touching its live set) or in
// a stop-the-world parallel collection (draining the GCTaskQueue with the
// worker count chosen by its container-awareness policy). Memory committed
// by the heap is charged to the container's cgroup, so an oversized heap
// pushes the host into swapping exactly as in §5.3.
#pragma once

#include <memory>
#include <vector>

#include "src/container/container.h"
#include "src/jvm/adaptive_sizing.h"
#include "src/jvm/config.h"
#include "src/jvm/gc_tasks.h"
#include "src/jvm/heap.h"
#include "src/jvm/policy.h"
#include "src/obs/trace_recorder.h"
#include "src/sched/fair_scheduler.h"

namespace arv::jvm {

enum class JvmState {
  kMutating,
  kInGc,
  kCompleted,  ///< workload finished
  kOomError,   ///< java.lang.OutOfMemoryError: live data exceeds the heap limit
  kKilled,     ///< cgroup OOM-killed by the kernel
};

struct JvmStats {
  SimTime start_time = 0;
  SimTime end_time = -1;
  bool completed = false;
  bool oom_error = false;
  bool killed = false;
  int minor_gcs = 0;
  int major_gcs = 0;
  SimDuration minor_gc_time = 0;  ///< STW wall time
  SimDuration major_gc_time = 0;
  SimDuration stall_time = 0;     ///< wall time blocked on swap I/O
  Bytes allocated_total = 0;

  SimDuration gc_time() const { return minor_gc_time + major_gc_time; }
  SimDuration exec_time() const { return end_time >= 0 ? end_time - start_time : -1; }
};

/// One (time, workers, phase) record per collection — Figure 8(b)'s series.
struct GcThreadSample {
  SimTime when;
  int workers;
  GcPhase phase;
};

/// Point-in-time heap geometry — Figure 12's series.
struct HeapSample {
  SimTime when;
  Bytes used;
  Bytes committed;
  Bytes virtual_max;
};

class Jvm : public sched::Schedulable {
 public:
  /// Launches `java` inside `target`: spawns the process, runs the launch
  /// policy, reserves the heap, and attaches to the scheduler.
  Jvm(container::Host& host, container::Container& target, JvmFlags flags,
      JavaWorkload workload);
  ~Jvm() override;
  Jvm(const Jvm&) = delete;
  Jvm& operator=(const Jvm&) = delete;

  // --- sched::Schedulable ----------------------------------------------------
  int runnable_threads() const override;
  void consume(SimTime now, SimDuration dt, CpuTime grant) override;

  // --- observers --------------------------------------------------------------
  JvmState state() const { return state_; }
  bool finished() const { return state_ != JvmState::kMutating && state_ != JvmState::kInGc; }
  const JvmStats& stats() const { return stats_; }
  const Heap& heap() const { return *heap_; }
  const LaunchDecision& launch() const { return launch_; }
  const JavaWorkload& workload() const { return workload_; }
  proc::Pid pid() const { return pid_; }
  const std::vector<GcThreadSample>& gc_thread_trace() const { return gc_trace_; }

  HeapSample sample_heap() const;

  /// The workload's current live data (grows for leak-style workloads).
  Bytes live_target() const;

  /// Fraction of mutator work completed, in [0, 1].
  double progress() const;

 private:
  void mutate(SimTime now, SimDuration dt, CpuTime grant);
  void advance_gc(SimTime now, SimDuration dt, CpuTime grant);
  void start_minor(SimTime now);
  void start_major(SimTime now);
  void finish_gc(SimTime now);
  void after_minor(SimTime now, const GcSessionResult& result);
  void after_major(SimTime now, const GcSessionResult& result);
  void drain_pending_allocation(SimTime now);
  void poll_elastic_heap(SimTime now);
  void fail_oom(SimTime now);
  void terminate(SimTime now, JvmState state);
  void apply_touch_stall(SimTime now, Bytes touched);

  container::Host& host_;
  container::Container& container_;
  proc::Pid pid_;
  JvmFlags flags_;
  JavaWorkload workload_;
  LaunchDecision launch_;
  std::unique_ptr<Heap> heap_;
  GcSession gc_;
  AdaptiveSizePolicy sizing_;

  JvmState state_ = JvmState::kMutating;
  CpuTime work_done_ = 0;
  Bytes pending_alloc_ = 0;
  SimTime stalled_until_ = 0;
  SimTime last_minor_end_ = 0;
  Bytes pre_gc_eden_ = 0;
  Bytes pre_gc_survivor_ = 0;
  SimTime next_heap_poll_ = 0;
  int back_to_back_gcs_ = 0;

  JvmStats stats_;
  std::vector<GcThreadSample> gc_trace_;
  bool attached_ = false;
  obs::TraceRecorder* trace_ = nullptr;  ///< host's recorder; may be null
  std::vector<obs::SeriesHandle> trace_handles_;
};

}  // namespace arv::jvm
