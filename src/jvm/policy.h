// Launch-time and per-collection configuration policies — the five JVM
// generations the paper's evaluation compares (§2.2, §5):
//
//   vanilla (JDK <= 8)  probes host CPUs/memory via sysconf; oblivious.
//   JDK 9               static container CPU limit (cpuset, else quota) and
//                       hard memory limit, read once at launch.
//   JDK 10              additionally derives a static CPU count from
//                       cpu.shares (Algorithm 1 line 4's share term).
//   opt-tuned           experimenter-pinned thread count / heap.
//   adaptive            the paper's system: maximum worker pool at launch,
//                       per-GC thread count and heap limit from the
//                       continuously updated resource view.
#pragma once

#include "src/container/container.h"
#include "src/jvm/config.h"

namespace arv::jvm {

/// Everything decided when `java` starts.
struct LaunchDecision {
  int gc_worker_pool = 1;    ///< N: GC threads created at launch
  Bytes max_heap = 0;        ///< MaxHeapSize (reserved)
  Bytes initial_heap = 0;    ///< -Xms equivalent
  Bytes initial_virtual_max = 0;  ///< elastic heap: starting VirtualMax
};

/// The static CPU count a JDK-9-style runtime detects for a container:
/// |cpuset| if set, else quota/period, else host online CPUs.
int jdk9_cpu_count(const container::Host& host, cgroup::CgroupId id);

/// JDK 10 refinement: also bound by ceil(share_fraction * online).
int jdk10_cpu_count(const container::Host& host, cgroup::CgroupId id);

/// Compute the launch decision for a JVM running as process `pid` inside
/// `target` (CPU probing goes through the virtual sysfs, so an adaptive
/// container answers with effective values).
LaunchDecision decide_launch(container::Host& host, container::Container& target,
                             proc::Pid pid, const JvmFlags& flags,
                             const JavaWorkload& workload);

/// GC threads to wake for one collection (§4.1):
///   N_gc = min(N, N_active, E_CPU)
/// where N_active applies only with dynamic_gc_threads and E_CPU only for
/// the adaptive kind (read live from the resource view via sysconf).
int decide_gc_threads(container::Host& host, proc::Pid pid, const JvmFlags& flags,
                      int worker_pool, int mutator_threads, Bytes heap_committed);

}  // namespace arv::jvm
