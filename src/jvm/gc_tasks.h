// Parallel Scavenge task machinery (paper Figure 4).
//
// HotSpot's PS collector pushes typed tasks (OldToYoungRootsTask,
// ScavengeRootsTask, StealTask, PSRefProcTaskProxy) into a central
// GCTaskQueue guarded by the GCTaskManager monitor; a variable number of
// workers is woken per collection and each worker fetches tasks until the
// queue drains — dynamic work assignment lets faster workers take more.
//
// The model keeps that structure: a collection fills the queue from the live
// bytes to scan, `active_workers` are woken, and advance() drains tasks at a
// rate set by the granted CPU time and an efficiency curve
//
//     eff(n, c) = 1 / (1 + alpha*(n-1)) / (1 + beta*max(0, n - c))
//
// where n = active workers and c = CPUs actually granted this tick: alpha
// models synchronization on the shared queue (sub-linear GC scalability),
// beta the over-threading penalty when workers outnumber granted CPUs.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "src/util/types.h"

namespace arv::jvm {

enum class GcTaskKind {
  kOldToYoungRoots,
  kScavengeRoots,
  kSteal,
  kRefProc,
  kFinal,
};

struct GcTask {
  GcTaskKind kind;
  CpuTime work;         ///< CPU time to process this task
  Bytes bytes_scanned;  ///< heap bytes this task touches
};

/// The central queue; mutual exclusion is implicit (single-threaded model),
/// its *cost* is carried by the alpha coefficient above.
class GcTaskQueue {
 public:
  void push(GcTask task);
  bool empty() const { return tasks_.empty(); }
  std::size_t size() const { return tasks_.size(); }
  void clear();

  /// Fetch the next task (FIFO, as GCTaskManager hands tasks out in order).
  GcTask pop();

 private:
  std::deque<GcTask> tasks_;
};

enum class GcPhase { kIdle, kMinor, kMajor };

struct GcSessionResult {
  GcPhase phase = GcPhase::kIdle;
  SimTime start = 0;
  SimTime end = 0;
  int active_workers = 0;
  Bytes bytes_scanned = 0;
  CpuTime cpu_spent = 0;
};

/// One garbage collection in flight.
class GcSession {
 public:
  /// Fill the queue for a collection over `live_bytes` of data.
  /// `cost_per_mib`/`fixed_cost` come from the workload model; `workers`
  /// is the number of GC threads woken for this collection.
  void begin(GcPhase phase, SimTime now, int workers, Bytes live_bytes,
             SimDuration cost_per_mib, SimDuration fixed_cost, double alpha,
             double beta);

  bool active() const { return phase_ != GcPhase::kIdle; }
  GcPhase phase() const { return phase_; }
  int active_workers() const { return workers_; }
  std::size_t tasks_remaining() const { return queue_.size(); }

  /// Consume `grant` CPU time over a tick of length `dt`; returns the heap
  /// bytes scanned (the caller charges them to the swap model).
  Bytes advance(CpuTime grant, SimDuration dt);

  bool done() const { return active() && queue_.empty(); }

  /// Close the session and report totals.
  GcSessionResult finish(SimTime now);

  /// Per-worker task counts for the finished or in-flight session
  /// (dynamic assignment bookkeeping; round-robin in the fluid model).
  const std::vector<std::uint64_t>& tasks_per_worker() const {
    return tasks_per_worker_;
  }

 private:
  GcPhase phase_ = GcPhase::kIdle;
  GcTaskQueue queue_;
  int workers_ = 0;
  double alpha_ = 0.0;
  double beta_ = 0.0;
  SimTime start_ = 0;
  Bytes scanned_ = 0;
  CpuTime cpu_spent_ = 0;
  std::vector<std::uint64_t> tasks_per_worker_;
  std::size_t next_worker_ = 0;
};

/// HotSpot's launch-time default GC thread count for `cpus` processors:
/// cpus <= 8 ? cpus : 8 + (cpus-8)*5/8. (On the paper's 20-core host: 15.)
int hotspot_default_gc_threads(int cpus);

/// HotSpot's UseDynamicNumberOfGCThreads heuristic: workers actually woken
/// are bounded by the mutator count and by a minimum amount of heap per
/// worker ("it imposes a minimum amount of work for a GC thread", §5.2).
int hotspot_active_workers(int pool_size, int mutator_threads, Bytes heap_committed);

}  // namespace arv::jvm
