// Generational heap geometry and accounting (§4.2, Figure 5).
//
// Two collected generations (young = eden + survivors, old) with HotSpot's
// fixed 1:2 young:old ratio. Three sizes per §4.2: used <= committed <=
// reserved. Committed memory is charged to the container's cgroup through
// the MemoryManager, so heap growth is what pushes the host toward its
// watermarks.
//
// Elastic heap: a dynamic VirtualMax (plus derived YoungMax / OldMax)
// decouples the sizing algorithm from the launch-time reserved size
// (MaxHeapSize). Shrinking VirtualMax distinguishes the three §4.2 cases:
// limits-only move, committed shrink, and "GC required" when even the used
// space no longer fits.
#pragma once

#include "src/mem/memory_manager.h"
#include "src/util/types.h"

namespace arv::jvm {

/// Outcome of moving VirtualMax down/up.
enum class ResizeOutcome {
  kLimitsAdjusted,   ///< case 1: only YoungMax/OldMax moved
  kCommittedShrunk,  ///< case 2: free committed space was released
  kGcRequired,       ///< case 3: used space exceeds the new limit
};

class Heap {
 public:
  /// `reserved` is MaxHeapSize (static, from -Xmx or ergonomics);
  /// `initial_committed` is -Xms. VirtualMax starts at `reserved`.
  Heap(mem::MemoryManager& memory, cgroup::CgroupId cgroup, Bytes reserved,
       Bytes initial_committed);
  ~Heap();
  Heap(const Heap&) = delete;
  Heap& operator=(const Heap&) = delete;

  // --- geometry -------------------------------------------------------------
  static constexpr int kYoungToOldRatio = 2;  ///< old = 2 * young
  static constexpr double kEdenFraction = 0.8;

  Bytes reserved() const { return reserved_; }
  Bytes virtual_max() const { return virtual_max_; }
  /// Upper bound on the young generation: its share of the 1:2 ratio.
  Bytes young_max() const { return virtual_max_ / (1 + kYoungToOldRatio); }
  /// Upper bound on the old generation. The ratio is a *target*, not a hard
  /// split: as in HotSpot, the old generation may grow into whatever part of
  /// the budget the young generation has not committed.
  Bytes old_max() const {
    return std::max<Bytes>(0, virtual_max_ - young_committed_);
  }

  Bytes young_committed() const { return young_committed_; }
  Bytes old_committed() const { return old_committed_; }
  Bytes committed() const { return young_committed_ + old_committed_; }

  Bytes eden_capacity() const {
    return static_cast<Bytes>(static_cast<double>(young_committed_) * kEdenFraction);
  }
  /// Space available to survivors (the non-eden part of young).
  Bytes survivor_capacity() const { return young_committed_ - eden_capacity(); }
  Bytes eden_used() const { return eden_used_; }
  Bytes survivor_used() const { return survivor_used_; }
  Bytes old_used() const { return old_used_; }
  Bytes used() const { return eden_used_ + survivor_used_ + old_used_; }

  // --- mutator interface ----------------------------------------------------
  /// Bump-allocate into eden. Returns false when eden is full (allocation
  /// failure => the caller triggers a minor collection).
  bool allocate(Bytes bytes);

  /// Space eden can actually grow into: its capacity fraction, minus any
  /// overhang from survivors that exceed their target fraction (possible
  /// right after a shrink, until the next minor collection resolves it).
  Bytes eden_limit() const {
    return std::min(eden_capacity(), young_committed_ - survivor_used_);
  }

  /// Space left in eden before the next allocation failure.
  Bytes eden_room() const { return std::max<Bytes>(0, eden_limit() - eden_used_); }

  // --- collector interface --------------------------------------------------
  /// Apply the result of a minor collection: eden cleared, `survivors`
  /// bytes stay in the survivor space, `promoted` bytes move to old.
  /// Survivors beyond the survivor-space capacity overflow-promote to the
  /// old generation, as in HotSpot.
  void finish_minor(Bytes survivors, Bytes promoted);

  /// Apply the result of a major collection: old compacts to `old_live`,
  /// survivor space compacts to `survivor_live`.
  void finish_major(Bytes old_live, Bytes survivor_live);

  /// True when a promotion of `bytes` would overflow the old generation.
  bool promotion_would_fail(Bytes bytes) const {
    return old_used_ + bytes > old_committed_;
  }

  // --- sizing ----------------------------------------------------------------
  /// Grow/shrink committed space (young and old keep the 1:2 ratio as in
  /// HotSpot's PSYoungGen/PSOldGen resizing). Growth is clamped to
  /// YoungMax/OldMax and charged to the cgroup; returns false if the charge
  /// OOM-killed the container. Shrinking never drops below used space.
  bool resize_young(Bytes target_committed);
  bool resize_old(Bytes target_committed);

  /// §4.2: move VirtualMax (the dynamic reserved size). Upward moves just
  /// raise the limits; downward moves classify into the three cases.
  ResizeOutcome set_virtual_max(Bytes new_max);

  /// True after a charge was refused because the cgroup was OOM-killed.
  bool oom_killed() const { return oom_killed_; }

 private:
  bool recharge(Bytes new_committed_total);

  mem::MemoryManager& memory_;
  cgroup::CgroupId cgroup_;
  Bytes reserved_;
  Bytes virtual_max_;
  Bytes young_committed_ = 0;
  Bytes old_committed_ = 0;
  Bytes eden_used_ = 0;
  Bytes survivor_used_ = 0;
  Bytes old_used_ = 0;
  Bytes charged_ = 0;
  bool oom_killed_ = false;
};

}  // namespace arv::jvm
