#include "src/jvm/adaptive_sizing.h"

#include <algorithm>

#include "src/util/assert.h"

namespace arv::jvm {

SizingDecision AdaptiveSizePolicy::after_minor(const MinorObservation& obs) const {
  ARV_ASSERT(obs.pause >= 0 && obs.mutator_interval >= 0);
  SizingDecision decision;
  decision.young_target = obs.young_committed;
  decision.old_target = obs.old_committed;

  // Promotion pressure overrides the pause/footprint goals: when the old
  // generation is close to its limit, young cedes exactly enough budget
  // that OldMax (VirtualMax minus committed young) regains headroom over
  // the old generation's live data.
  if (obs.old_max != kUnlimited &&
      static_cast<double>(obs.old_used) >
          config_.old_pressure_trigger * static_cast<double>(obs.old_max)) {
    const Bytes budget = obs.old_max + obs.young_committed;  // == VirtualMax
    const Bytes young_for_headroom = budget - static_cast<Bytes>(
        1.15 * static_cast<double>(obs.old_used));
    decision.young_target = std::min(
        static_cast<Bytes>(static_cast<double>(obs.young_committed) *
                           config_.young_shrink_factor),
        std::max<Bytes>(young_for_headroom, 0));
    decision.old_target = static_cast<Bytes>(
        static_cast<double>(obs.old_used) * config_.old_headroom);
    return decision;
  }

  const double pause = std::max<double>(1.0, static_cast<double>(obs.pause));
  const double interval = static_cast<double>(obs.mutator_interval);
  if (interval < config_.grow_ratio * pause) {
    // Collections are back-to-back: GC overhead above goal, grow eden.
    decision.young_target = static_cast<Bytes>(
        static_cast<double>(obs.young_committed) * config_.young_grow_factor);
  } else if (interval > config_.shrink_ratio * pause) {
    // Footprint goal: the heap is larger than the allocation rate needs.
    decision.young_target = static_cast<Bytes>(
        static_cast<double>(obs.young_committed) * config_.young_shrink_factor);
  }

  if (static_cast<double>(obs.old_used) >
      config_.old_grow_trigger * static_cast<double>(obs.old_committed)) {
    decision.old_target = static_cast<Bytes>(
        static_cast<double>(obs.old_used) * config_.old_headroom);
  }
  return decision;
}

SizingDecision AdaptiveSizePolicy::after_major(const MajorObservation& obs) const {
  SizingDecision decision;
  decision.young_target = obs.young_committed;
  // Re-center the old generation around its live data with headroom; a
  // major collection is the only point with an exact live measurement.
  decision.old_target = std::max(
      obs.old_committed / 2,
      static_cast<Bytes>(static_cast<double>(obs.old_live) * config_.old_headroom));
  return decision;
}

}  // namespace arv::jvm
