#include "src/jvm/heap.h"

#include <algorithm>

#include "src/util/assert.h"

namespace arv::jvm {

Heap::Heap(mem::MemoryManager& memory, cgroup::CgroupId cgroup, Bytes reserved,
           Bytes initial_committed)
    : memory_(memory),
      cgroup_(cgroup),
      reserved_(page_align_up(reserved)),
      virtual_max_(reserved_) {
  ARV_ASSERT(reserved_ > 0);
  const Bytes initial = std::clamp<Bytes>(page_align_up(initial_committed),
                                          4 * units::MiB, reserved_);
  // Committed space keeps the 1:2 ratio from the start.
  young_committed_ = page_align_up(initial / (1 + kYoungToOldRatio));
  old_committed_ = page_align_up(initial - young_committed_);
  recharge(young_committed_ + old_committed_);
}

Heap::~Heap() {
  if (charged_ > 0) {
    memory_.uncharge(cgroup_, charged_);
  }
}

bool Heap::recharge(Bytes new_committed_total) {
  if (new_committed_total == charged_) {
    return true;
  }
  if (new_committed_total > charged_) {
    const auto result = memory_.charge(cgroup_, new_committed_total - charged_);
    if (result == mem::ChargeResult::kOomKilled) {
      oom_killed_ = true;
      return false;
    }
  } else {
    memory_.uncharge(cgroup_, charged_ - new_committed_total);
  }
  charged_ = new_committed_total;
  return true;
}

bool Heap::allocate(Bytes bytes) {
  ARV_ASSERT(bytes >= 0);
  if (eden_used_ + bytes > eden_limit()) {
    return false;
  }
  eden_used_ += bytes;
  return true;
}

void Heap::finish_minor(Bytes survivors, Bytes promoted) {
  ARV_ASSERT(survivors >= 0 && promoted >= 0);
  eden_used_ = 0;
  // Survivor overflow: what does not fit the survivor space promotes.
  const Bytes kept = std::min(survivors, survivor_capacity());
  survivor_used_ = kept;
  old_used_ += promoted + (survivors - kept);
  // The old generation may transiently exceed committed space during a
  // failed promotion; the collector responds with a major GC.
}

void Heap::finish_major(Bytes old_live, Bytes survivor_live) {
  ARV_ASSERT(old_live >= 0 && survivor_live >= 0);
  old_used_ = old_live;
  survivor_used_ = survivor_live;
  eden_used_ = 0;
}

bool Heap::resize_young(Bytes target_committed) {
  Bytes target = page_align_up(target_committed);
  target = std::min(target, young_max());
  // Growing young must not strand the old generation past its limit.
  target = std::min(target, std::max<Bytes>(0, virtual_max_ - old_committed_));
  // Committed space stays page-granular (the caps above need not be).
  target = target / units::page * units::page;
  // Shrinking must keep eden's capacity above its usage and the whole
  // generation above everything it holds. Survivor bytes may transiently
  // exceed their target fraction of a shrunken young gen — the next minor
  // collection overflow-promotes them (finish_minor), exactly as HotSpot
  // resolves a shrink below the survivor high-water mark.
  const Bytes min_for_eden =
      static_cast<Bytes>(static_cast<double>(eden_used_) / kEdenFraction);
  target = std::max(
      target, page_align_up(std::max(min_for_eden, eden_used_ + survivor_used_)));
  target = std::max<Bytes>(target, units::MiB);
  if (target == young_committed_) {
    return true;
  }
  const Bytes old_value = young_committed_;
  young_committed_ = target;
  if (!recharge(young_committed_ + old_committed_)) {
    young_committed_ = old_value;
    return false;
  }
  return true;
}

bool Heap::resize_old(Bytes target_committed) {
  Bytes target = page_align_up(target_committed);
  target = std::min(target, old_max());
  target = target / units::page * units::page;
  target = std::max(target, page_align_up(old_used_));
  target = std::max<Bytes>(target, units::MiB);
  if (target == old_committed_) {
    return true;
  }
  const Bytes old_value = old_committed_;
  old_committed_ = target;
  if (!recharge(young_committed_ + old_committed_)) {
    old_committed_ = old_value;
    return false;
  }
  return true;
}

ResizeOutcome Heap::set_virtual_max(Bytes new_max) {
  ARV_ASSERT(new_max > 0);
  virtual_max_ = std::min(page_align_up(new_max), reserved_);

  // Growing (or no-op): the sizing algorithm will expand lazily.
  if (young_committed_ <= young_max() && old_committed_ <= old_max()) {
    return ResizeOutcome::kLimitsAdjusted;
  }

  // Case 3 first: the live data itself no longer fits below the new limits.
  // Release the free committed space right away (down to the used floors) —
  // otherwise a fleet of pressured JVMs would pin physical memory with
  // committed-but-unused pages — and tell the caller to collect.
  if (eden_used_ + survivor_used_ > young_max() || old_used_ > old_max()) {
    resize_young(page_align_up(eden_used_ + survivor_used_));
    resize_old(page_align_up(old_used_));
    return ResizeOutcome::kGcRequired;
  }

  // Case 2: shrink committed space down to the new limits (free space only).
  resize_young(std::min(young_committed_, young_max()));
  resize_old(std::min(old_committed_, old_max()));
  return ResizeOutcome::kCommittedShrunk;
}

}  // namespace arv::jvm
