// AdaptiveSizePolicy — a compact model of HotSpot's PS ergonomics.
//
// After every collection HotSpot's adaptive sizing nudges the committed
// generation sizes toward a GC-overhead goal: grow the young generation when
// collections come too close together (high GC overhead), shrink it when the
// mutator runs long between collections (wasted footprint), and keep the old
// generation comfortably above its live data. The §4.2 elastic heap reuses
// this machinery unchanged — it only moves the *limits* the policy respects.
#pragma once

#include "src/util/types.h"

namespace arv::jvm {

struct SizingConfig {
  /// Grow young when mutator time between minors < grow_ratio * pause.
  double grow_ratio = 15.0;
  /// Shrink young when mutator time between minors > shrink_ratio * pause.
  double shrink_ratio = 120.0;
  double young_grow_factor = 1.5;
  double young_shrink_factor = 0.85;
  /// Keep old committed at least this factor over its live data.
  double old_headroom = 1.5;
  /// Grow old when used exceeds this fraction of committed.
  double old_grow_trigger = 0.70;
  /// Promotion pressure: when old usage exceeds this fraction of OldMax,
  /// shrink the young generation to cede budget to old (HotSpot balances
  /// the generations the same way when the old gen nears its limit).
  double old_pressure_trigger = 0.85;
};

struct MinorObservation {
  SimDuration pause;            ///< duration of the minor collection
  SimDuration mutator_interval; ///< mutator time since the previous minor
  Bytes young_committed;
  Bytes old_committed;
  Bytes old_used;               ///< after promotion
  Bytes old_max = kUnlimited;   ///< current OldMax (VirtualMax - young)
};

struct MajorObservation {
  Bytes old_live;  ///< old-generation live data after compaction
  Bytes old_committed;
  Bytes young_committed;
};

struct SizingDecision {
  Bytes young_target;
  Bytes old_target;
};

class AdaptiveSizePolicy {
 public:
  explicit AdaptiveSizePolicy(SizingConfig config = {}) : config_(config) {}

  SizingDecision after_minor(const MinorObservation& obs) const;
  SizingDecision after_major(const MajorObservation& obs) const;

  const SizingConfig& config() const { return config_; }

 private:
  SizingConfig config_;
};

}  // namespace arv::jvm
