#include "src/jvm/jvm.h"

#include <algorithm>

#include "src/util/assert.h"
#include "src/util/log.h"

namespace arv::jvm {
namespace {

/// A JVM that needs more than this many consecutive collections without
/// mutator progress is out of memory for real.
constexpr int kMaxBackToBackGcs = 8;

}  // namespace

Jvm::Jvm(container::Host& host, container::Container& target, JvmFlags flags,
         JavaWorkload workload)
    : host_(host),
      container_(target),
      pid_(target.spawn_process("java:" + workload.name)),
      flags_(flags),
      workload_(std::move(workload)),
      launch_(decide_launch(host, target, pid_, flags_, workload_)) {
  heap_ = std::make_unique<Heap>(host_.memory(), container_.cgroup(),
                                 launch_.max_heap, launch_.initial_heap);
  if (launch_.initial_virtual_max < launch_.max_heap) {
    heap_->set_virtual_max(launch_.initial_virtual_max);
  }
  stats_.start_time = host_.now();
  last_minor_end_ = host_.now();
  next_heap_poll_ = host_.now() + flags_.heap_poll_interval;
  host_.scheduler().attach(container_.cgroup(), this);
  attached_ = true;

  if ((trace_ = host_.trace()) != nullptr) {
    const std::string& scope = container_.name();
    trace_handles_.push_back(trace_->add_gauge("jvm.gc_workers", scope, [this] {
      return state_ == JvmState::kInGc ? gc_.active_workers() : 0;
    }));
    trace_handles_.push_back(trace_->add_gauge(
        "jvm.heap_used", scope, [this] { return heap_->used(); }));
    trace_handles_.push_back(trace_->add_gauge(
        "jvm.heap_committed", scope, [this] { return heap_->committed(); }));
    trace_handles_.push_back(trace_->add_gauge(
        "jvm.heap_virtual_max", scope, [this] { return heap_->virtual_max(); }));
    trace_handles_.push_back(trace_->add_counter(
        "jvm.minor_gcs", scope, [this] { return stats_.minor_gcs; }));
    trace_handles_.push_back(trace_->add_counter(
        "jvm.major_gcs", scope, [this] { return stats_.major_gcs; }));
    trace_handles_.push_back(trace_->add_gauge(
        "jvm.state", scope, [this] { return static_cast<int>(state_); }));
  }
}

Jvm::~Jvm() {
  if (attached_) {
    host_.scheduler().detach(container_.cgroup(), this);
  }
  if (trace_ != nullptr) {
    for (const obs::SeriesHandle handle : trace_handles_) {
      trace_->retire(handle);
    }
  }
}

int Jvm::runnable_threads() const {
  switch (state_) {
    case JvmState::kMutating:
      // Blocked on swap I/O: iowait consumes no CPU.
      if (host_.now() < stalled_until_) {
        return 0;
      }
      return workload_.mutator_threads;
    case JvmState::kInGc:
      if (host_.now() < stalled_until_) {
        return 0;
      }
      return gc_.active_workers();
    case JvmState::kCompleted:
    case JvmState::kOomError:
    case JvmState::kKilled:
      return 0;
  }
  return 0;
}

Bytes Jvm::live_target() const {
  return workload_.live_set +
         static_cast<Bytes>(static_cast<double>(stats_.allocated_total) *
                            workload_.live_fraction_of_alloc);
}

double Jvm::progress() const {
  return std::min(1.0, static_cast<double>(work_done_) /
                           static_cast<double>(workload_.total_work));
}

HeapSample Jvm::sample_heap() const {
  return HeapSample{host_.now(), heap_->used(), heap_->committed(),
                    heap_->virtual_max()};
}

void Jvm::apply_touch_stall(SimTime now, Bytes touched) {
  if (touched <= 0) {
    return;
  }
  const SimDuration stall = host_.memory().touch(container_.cgroup(), touched);
  if (stall > 0) {
    stalled_until_ = std::max(stalled_until_, now) + stall;
    stats_.stall_time += stall;
  }
}

void Jvm::terminate(SimTime now, JvmState state) {
  state_ = state;
  stats_.end_time = now;
  stats_.completed = state == JvmState::kCompleted;
  stats_.oom_error = state == JvmState::kOomError;
  stats_.killed = state == JvmState::kKilled;
}

void Jvm::fail_oom(SimTime now) {
  ARV_LOG(kInfo, "jvm", "%s: java.lang.OutOfMemoryError (live=%lld, limit=%lld)",
          workload_.name.c_str(), static_cast<long long>(live_target()),
          static_cast<long long>(heap_->virtual_max()));
  terminate(now, JvmState::kOomError);
}

void Jvm::consume(SimTime now, SimDuration dt, CpuTime grant) {
  if (finished()) {
    return;
  }
  if (heap_->oom_killed()) {
    terminate(now, JvmState::kKilled);
    return;
  }
  if (flags_.kind == JvmKind::kAdaptive && flags_.elastic_heap &&
      now >= next_heap_poll_) {
    poll_elastic_heap(now);
  }
  if (now < stalled_until_ || grant <= 0) {
    return;
  }
  if (state_ == JvmState::kMutating) {
    mutate(now, dt, grant);
  } else if (state_ == JvmState::kInGc) {
    advance_gc(now, dt, grant);
  }
}

void Jvm::mutate(SimTime now, SimDuration /*dt*/, CpuTime grant) {
  work_done_ += grant;
  const bool work_complete = work_done_ >= workload_.total_work;

  // Allocation at the workload rate, bump-pointer into eden.
  const Bytes alloc = grant * workload_.alloc_per_cpu_sec / units::sec;
  stats_.allocated_total += alloc;
  if (!heap_->allocate(alloc)) {
    if (work_complete) {
      // The program is done; the last allocation burst needs no collection.
      terminate(now, JvmState::kCompleted);
      return;
    }
    // Allocation failure: fill what fits, collect, retry the rest after.
    const Bytes room = heap_->eden_room();
    heap_->allocate(room);
    pending_alloc_ += alloc - room;
    start_minor(now);
    return;
  }

  // Working-set traffic drives swap-ins when pages were reclaimed.
  const Bytes touched = static_cast<Bytes>(
      static_cast<double>(live_target()) * workload_.touch_rate *
      static_cast<double>(grant) / static_cast<double>(units::sec));
  apply_touch_stall(now, touched);

  if (work_complete) {
    terminate(now, JvmState::kCompleted);
  }
}

void Jvm::start_minor(SimTime now) {
  const int threads =
      decide_gc_threads(host_, pid_, flags_, launch_.gc_worker_pool,
                        workload_.mutator_threads, heap_->committed());
  pre_gc_eden_ = heap_->eden_used();
  pre_gc_survivor_ = heap_->survivor_used();
  const Bytes live = static_cast<Bytes>(static_cast<double>(pre_gc_eden_) *
                                        workload_.survival_ratio) +
                     pre_gc_survivor_;
  gc_.begin(GcPhase::kMinor, now, threads, live, workload_.gc_cost_per_mib,
            workload_.gc_fixed_cost, workload_.gc_alpha, workload_.gc_beta);
  gc_trace_.push_back({now, threads, GcPhase::kMinor});
  state_ = JvmState::kInGc;
}

void Jvm::start_major(SimTime now) {
  const int threads =
      decide_gc_threads(host_, pid_, flags_, launch_.gc_worker_pool,
                        workload_.mutator_threads, heap_->committed());
  // A major collection scans the full live heap; majors cost more per byte
  // (compaction), modeled as 2x the scan cost.
  const Bytes live = heap_->old_used() + heap_->survivor_used();
  gc_.begin(GcPhase::kMajor, now, threads, live, 2 * workload_.gc_cost_per_mib,
            2 * workload_.gc_fixed_cost, workload_.gc_alpha, workload_.gc_beta);
  gc_trace_.push_back({now, threads, GcPhase::kMajor});
  state_ = JvmState::kInGc;
}

void Jvm::advance_gc(SimTime now, SimDuration dt, CpuTime grant) {
  const Bytes scanned = gc_.advance(grant, dt);
  apply_touch_stall(now, scanned);
  if (gc_.done()) {
    finish_gc(now);
  }
}

void Jvm::finish_gc(SimTime now) {
  const GcSessionResult result = gc_.finish(now);
  if (result.phase == GcPhase::kMinor) {
    stats_.minor_gcs += 1;
    stats_.minor_gc_time += result.end - result.start;
    after_minor(now, result);
  } else {
    stats_.major_gcs += 1;
    stats_.major_gc_time += result.end - result.start;
    after_major(now, result);
  }
}

void Jvm::after_minor(SimTime now, const GcSessionResult& result) {
  // Survivor aging (simplified to one round): previous survivors promote,
  // this eden's survivors stay in the survivor space.
  const Bytes survivors = static_cast<Bytes>(
      static_cast<double>(pre_gc_eden_) * workload_.survival_ratio);
  const Bytes promoted = pre_gc_survivor_;
  heap_->finish_minor(survivors, promoted);

  if (heap_->old_used() > heap_->old_committed()) {
    // Promotion overflow: grow the old generation if OldMax permits,
    // otherwise fall back to a full collection. (resize_old's never-below-
    // used floor must not be used to sneak past OldMax.)
    if (heap_->old_used() > heap_->old_max()) {
      start_major(now);
      return;
    }
    heap_->resize_old(static_cast<Bytes>(
        static_cast<double>(heap_->old_used()) * sizing_.config().old_headroom));
    if (heap_->oom_killed()) {
      terminate(now, JvmState::kKilled);
      return;
    }
    if (heap_->old_used() > heap_->old_committed()) {
      start_major(now);
      return;
    }
  }

  // HotSpot ergonomics step.
  MinorObservation obs;
  obs.pause = result.end - result.start;
  obs.mutator_interval = std::max<SimDuration>(0, result.start - last_minor_end_);
  obs.young_committed = heap_->young_committed();
  obs.old_committed = heap_->old_committed();
  obs.old_used = heap_->old_used();
  obs.old_max = heap_->old_max();
  const SizingDecision decision = sizing_.after_minor(obs);
  heap_->resize_young(decision.young_target);
  heap_->resize_old(decision.old_target);
  if (heap_->oom_killed()) {
    terminate(now, JvmState::kKilled);
    return;
  }

  last_minor_end_ = now;
  drain_pending_allocation(now);
}

void Jvm::after_major(SimTime now, const GcSessionResult& /*result*/) {
  // Compaction: the old generation collapses to the workload's live data.
  const Bytes old_live = std::min(heap_->old_used(), live_target());
  heap_->finish_major(old_live, heap_->survivor_used());

  if (heap_->old_used() > heap_->old_max()) {
    // Before giving up, an elastic heap re-reads effective memory at the
    // failure edge — the view may have outgrown VirtualMax since the last
    // 10-second poll (§4.2's expansion path).
    if (flags_.kind == JvmKind::kAdaptive && flags_.elastic_heap) {
      poll_elastic_heap(now);
    }
    if (heap_->old_used() > heap_->old_max()) {
      // Even a full collection cannot fit the live set under the current
      // limit: OutOfMemoryError (the JDK-9-in-Figure-2b failure mode).
      fail_oom(now);
      return;
    }
  }

  MajorObservation obs;
  obs.old_live = heap_->old_used();
  obs.old_committed = heap_->old_committed();
  obs.young_committed = heap_->young_committed();
  const SizingDecision decision = sizing_.after_major(obs);
  heap_->resize_old(decision.old_target);
  if (heap_->oom_killed()) {
    terminate(now, JvmState::kKilled);
    return;
  }
  drain_pending_allocation(now);
}

void Jvm::drain_pending_allocation(SimTime now) {
  if (pending_alloc_ > 0 && !heap_->allocate(pending_alloc_)) {
    // Eden still too small for the outstanding allocation: first let the
    // old generation give back its free headroom (committed-but-unused
    // space must not block an allocation), then grow young to fit.
    heap_->resize_old(static_cast<Bytes>(
        static_cast<double>(heap_->old_used()) * 1.05));
    const Bytes needed = static_cast<Bytes>(
        static_cast<double>(pending_alloc_ + heap_->eden_used() +
                            heap_->survivor_used()) /
        Heap::kEdenFraction * 1.25);
    heap_->resize_young(std::max(needed, heap_->young_committed()));
    if (heap_->oom_killed()) {
      terminate(now, JvmState::kKilled);
      return;
    }
    if (!heap_->allocate(pending_alloc_)) {
      ++back_to_back_gcs_;
      if (back_to_back_gcs_ >= kMaxBackToBackGcs) {
        fail_oom(now);
        return;
      }
      start_major(now);
      return;
    }
  }
  pending_alloc_ = 0;
  back_to_back_gcs_ = 0;
  state_ = JvmState::kMutating;
}

void Jvm::poll_elastic_heap(SimTime now) {
  next_heap_poll_ = now + flags_.heap_poll_interval;
  // §4.2: "we use effective memory from the sys_namespace as VirtualMax".
  const Bytes e_mem =
      static_cast<Bytes>(host_.sysfs().sysconf(pid_, vfs::Sysconf::kPhysPages)) *
      units::page;
  if (e_mem <= 0) {
    return;
  }
  const ResizeOutcome outcome = heap_->set_virtual_max(e_mem);
  if (outcome == ResizeOutcome::kGcRequired && state_ == JvmState::kMutating) {
    // Case 3: used space crosses the new limit — collect until it fits
    // (repeats at the next poll if one collection is not enough).
    start_major(now);
  }
}

}  // namespace arv::jvm
