// VirtualSysfs — the interception layer of §3.2.
//
// Every resource query carries the pid of the asking process. If the process
// is an ordinary host process, the answer comes from the host-wide view
// (total CPUs / total memory); if it is linked to a per-container
// sys_namespace, the query is redirected to that namespace and the
// *effective* resources are returned. The glibc sysconf() names the paper
// cites (_SC_NPROCESSORS_ONLN, _SC_PHYS_PAGES, _SC_PAGESIZE) are shimmed on
// top of the same redirection.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "src/cgroup/cgroup.h"
#include "src/core/ns_monitor.h"
#include "src/mem/memory_manager.h"
#include "src/obs/trace_recorder.h"
#include "src/proc/process.h"
#include "src/sched/fair_scheduler.h"
#include "src/vfs/pseudo_fs.h"

namespace arv::vfs {

/// The subset of sysconf(3) names containerized runtimes probe.
enum class Sysconf {
  kNProcessorsOnln,  ///< _SC_NPROCESSORS_ONLN
  kNProcessorsConf,  ///< _SC_NPROCESSORS_CONF
  kPhysPages,        ///< _SC_PHYS_PAGES
  kAvPhysPages,      ///< _SC_AVPHYS_PAGES
  kPageSize,         ///< _SC_PAGESIZE
};

class VirtualSysfs {
 public:
  VirtualSysfs(proc::ProcessTable& processes, cgroup::Tree& tree,
               sched::FairScheduler& scheduler, mem::MemoryManager& memory,
               core::NsMonitor& monitor);

  /// open()+read() of a pseudo-file as process `pid`. Container processes
  /// reading the paths below get their per-container view:
  ///   /sys/devices/system/cpu/online      "0-(E_CPU-1)"
  ///   /proc/meminfo                        MemTotal/MemFree from E_MEM
  ///   /proc/loadavg                        host loadavg (shared kernel)
  std::optional<std::string> read(proc::Pid pid, const std::string& path) const;

  /// Write to a knob file (host-side administration, e.g. docker update).
  bool write(const std::string& path, std::string_view value);

  /// sysconf(3) shim with the same per-process redirection.
  long sysconf(proc::Pid pid, Sysconf name) const;

  /// Expose the raw host fs for listing/tests.
  const PseudoFs& host_fs() const { return fs_; }

  /// (Re)build the /sys/fs/cgroup knob files for a cgroup. Called by the
  /// container runtime on creation; removal happens automatically on the
  /// cgroup-destroyed event.
  void export_cgroup_files(cgroup::CgroupId id);

  /// Register a cluster-level control-plane file (read-only). The
  /// autoscalers publish their decision counters under /sys/arv/autoscale/
  /// and /sys/arv/vpa/ on a designated host's sysfs through this; the
  /// cluster publishes its fleet snapshot under /sys/arv/fleet/. Path must
  /// start with "/sys/arv/". Without `generation` the provider is consulted
  /// on every read (decision counters change every round — caching would
  /// only serve stale values); with one, renders cache on it exactly like
  /// PseudoFs::register_file, so files over slow-moving state (the fleet
  /// view) re-render only when their backing generation advances.
  void register_control_file(const std::string& path, FileProvider provider,
                             const Generation* generation = nullptr);

  /// Remove every control file under `prefix` (component teardown — the
  /// providers capture their owner, so they must not outlive it).
  void remove_control_subtree(const std::string& prefix);

  /// Attach the observability layer: exports /sys/arv/trace/series and
  /// /sys/arv/trace/samples host-wide. The per-container live counters under
  /// /sys/arv/trace/ (e_cpu, e_mem, bounds, update counts) are always
  /// served for processes linked to a sys_namespace, recorder or not.
  void attach_trace(const obs::TraceRecorder* trace);

 private:
  void build_host_files();
  /// The /sys/arv/policy/<container>/ control directory: the writable
  /// cpu/mem policy selectors plus one validated file per Params knob.
  void register_policy_files(cgroup::CgroupId id, const std::string& name);
  std::shared_ptr<core::SysNamespace> sys_ns_of(proc::Pid pid) const;
  std::string meminfo_for(Bytes total, Bytes free) const;
  /// /proc/cpuinfo rendered for `cpus` visible processors. The text is a pure
  /// function of the count, so it is memoized — containers re-reading cpuinfo
  /// between effective-view changes (and hosts, ever) hit the cache.
  const std::string& cpuinfo_cached(int cpus) const;
  /// Value of one /sys/arv/trace/<counter> file for a container namespace.
  std::optional<std::int64_t> trace_counter_for(const core::SysNamespace& ns,
                                                const std::string& counter) const;

  proc::ProcessTable& processes_;
  cgroup::Tree& tree_;
  sched::FairScheduler& scheduler_;
  mem::MemoryManager& memory_;
  core::NsMonitor& monitor_;
  const obs::TraceRecorder* trace_ = nullptr;  ///< not owned; may be null
  PseudoFs fs_;
  /// Bumped on every cgroup event; knob files and other config-derived
  /// pseudo-files register against it so their rendered text is cached
  /// between configuration changes.
  Generation config_gen_ = 1;
  mutable std::map<int, std::string> cpuinfo_cache_;
};

}  // namespace arv::vfs
