#include "src/vfs/virtual_sysfs.h"

#include <charconv>
#include <cstdlib>

#include "src/util/assert.h"
#include "src/util/str.h"
#include "src/util/cpuset.h"

namespace arv::vfs {
namespace {

constexpr const char* kCpuOnlinePath = "/sys/devices/system/cpu/online";
constexpr const char* kMeminfoPath = "/proc/meminfo";
constexpr const char* kLoadavgPath = "/proc/loadavg";
constexpr const char* kCpuinfoPath = "/proc/cpuinfo";
/// The observability layer's per-container live counters (§ tentpole):
/// processes inside a container read their own adaptation state here.
constexpr const char* kTracePrefix = "/sys/arv/trace/";

// One /proc/cpuinfo record per visible processor, the fields runtimes grep.
std::string cpuinfo_for(int cpus) {
  std::string out;
  for (int cpu = 0; cpu < cpus; ++cpu) {
    out += strf(
        "processor\t: %d\nmodel name\t: Intel(R) Xeon(R) CPU E5-2650 v3 @ "
        "2.30GHz\ncpu MHz\t\t: 2300.000\n\n",
        cpu);
  }
  return out;
}

/// The adaptation-policy control plane (§ policy layer): per-container
/// policy selectors and Params knobs, runtime-writable like `docker update`.
constexpr const char* kPolicyPrefix = "/sys/arv/policy/";

std::optional<std::int64_t> parse_i64(std::string_view text) {
  // The kernel accepts surrounding whitespace on knob writes (`echo " 4" >
  // cpu.shares` works), so trim both ends, not just trailing newlines.
  text = trim(text);
  std::int64_t value = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    return std::nullopt;
  }
  return value;
}

std::optional<double> parse_f64(std::string_view text) {
  text = trim(text);
  if (text.empty()) {
    return std::nullopt;
  }
  const std::string owned(text);  // strtod needs a terminator
  char* end = nullptr;
  const double value = std::strtod(owned.c_str(), &end);
  if (end != owned.c_str() + owned.size()) {
    return std::nullopt;
  }
  return value;
}

}  // namespace

VirtualSysfs::VirtualSysfs(proc::ProcessTable& processes, cgroup::Tree& tree,
                           sched::FairScheduler& scheduler,
                           mem::MemoryManager& memory, core::NsMonitor& monitor)
    : processes_(processes),
      tree_(tree),
      scheduler_(scheduler),
      memory_(memory),
      monitor_(monitor) {
  build_host_files();
  tree_.subscribe([this](const cgroup::Event& event) {
    // Any cgroup event may change what a config-derived pseudo-file renders;
    // bumping the generation invalidates every cached render at once.
    ++config_gen_;
    if (event.kind == cgroup::EventKind::kDestroyed) {
      // Knob files of a destroyed cgroup disappear, as in the real sysfs.
      fs_.remove_subtree("/sys/fs/cgroup/cpu/" + event.name + "/");
      fs_.remove_subtree("/sys/fs/cgroup/cpuset/" + event.name + "/");
      fs_.remove_subtree("/sys/fs/cgroup/memory/" + event.name + "/");
      fs_.remove_subtree("/sys/fs/cgroup/unified/" + event.name + "/");
      fs_.remove_subtree(std::string(kPolicyPrefix) + event.name + "/");
    }
  });
}

std::string VirtualSysfs::meminfo_for(Bytes total, Bytes free) const {
  // procfs reports kB. MemAvailable approximated as MemFree (no page cache
  // in the model).
  return strf(
      "MemTotal:       %lld kB\nMemFree:        %lld kB\nMemAvailable:   %lld kB\n",
      static_cast<long long>(total / 1024), static_cast<long long>(free / 1024),
      static_cast<long long>(free / 1024));
}

const std::string& VirtualSysfs::cpuinfo_cached(int cpus) const {
  auto it = cpuinfo_cache_.find(cpus);
  if (it == cpuinfo_cache_.end()) {
    it = cpuinfo_cache_.emplace(cpus, cpuinfo_for(cpus)).first;
  }
  return it->second;
}

void VirtualSysfs::build_host_files() {
  // cpu topology files are pure configuration — cached under config_gen_.
  // meminfo/loadavg report live accounting and must render on every read.
  fs_.register_file(
      kCpuOnlinePath,
      [this] { return CpuSet::all(scheduler_.online_cpus()).to_string() + "\n"; },
      &config_gen_);
  fs_.register_file(
      "/sys/devices/system/cpu/possible",
      [this] { return CpuSet::all(scheduler_.online_cpus()).to_string() + "\n"; },
      &config_gen_);
  fs_.register_file(kMeminfoPath, [this] {
    return meminfo_for(memory_.total_ram(), memory_.free_memory());
  });
  fs_.register_file(kLoadavgPath, [this] {
    const double load = scheduler_.loadavg();
    return strf("%.2f %.2f %.2f %d/%zu 0\n", load, load, load,
                scheduler_.nr_running(), processes_.live_count());
  });
  fs_.register_file(
      kCpuinfoPath, [this] { return cpuinfo_cached(scheduler_.online_cpus()); },
      &config_gen_);
  // Host-wide list of registered adaptation policies (registry keys, one per
  // line) — what the per-container policy selector files will accept.
  fs_.register_file(std::string(kPolicyPrefix) + "available", [] {
    std::string out;
    for (const std::string& name :
         core::PolicyRegistry::instance().cpu_names()) {
      out += name;
      out += '\n';
    }
    return out;
  });
}

void VirtualSysfs::register_policy_files(cgroup::CgroupId id,
                                         const std::string& name) {
  const std::string dir = std::string(kPolicyPrefix) + name + "/";

  // The two policy selectors. Reads report the live policy ("none" for a
  // container without a resource view); writes swap the policy in place and
  // re-derive the effective value immediately. A write of an unregistered
  // name is a write error, mirroring `echo bogus > .../scaling_governor`.
  fs_.register_writable(
      dir + "cpu",
      [this, id]() -> std::string {
        const auto ns = monitor_.lookup(id);
        return ns ? ns->cpu_policy_name() + "\n" : "none\n";
      },
      [this, id](std::string_view v) {
        const auto ns = monitor_.lookup(id);
        if (ns == nullptr || !ns->set_cpu_policy(std::string(trim(v)))) {
          return false;
        }
        ++config_gen_;  // no cgroup event fires for policy writes
        return true;
      },
      &config_gen_);
  fs_.register_writable(
      dir + "mem",
      [this, id]() -> std::string {
        const auto ns = monitor_.lookup(id);
        return ns ? ns->mem_policy_name() + "\n" : "none\n";
      },
      [this, id](std::string_view v) {
        const auto ns = monitor_.lookup(id);
        if (ns == nullptr || !ns->set_mem_policy(std::string(trim(v)))) {
          return false;
        }
        ++config_gen_;
        return true;
      },
      &config_gen_);

  // One validated knob file per Params field. All writes funnel through
  // SysNamespace::set_params, so a value that fails Params::valid() (e.g.
  // cpu_step 0, a threshold of 1.5) is rejected with a write error and the
  // previous configuration stays live.
  const auto apply = [](const std::shared_ptr<core::SysNamespace>& ns,
                        core::Params params) {
    return ns != nullptr && ns->set_params(params);
  };
  auto double_knob = [&](const char* file, double core::Params::* field) {
    fs_.register_writable(
        dir + file,
        [this, id, field]() -> std::string {
          const auto ns = monitor_.lookup(id);
          return ns ? strf("%g\n", ns->params().*field) : "none\n";
        },
        [this, id, field, apply](std::string_view v) {
          const auto ns = monitor_.lookup(id);
          const auto value = parse_f64(v);
          if (ns == nullptr || !value) {
            return false;
          }
          core::Params params = ns->params();
          params.*field = *value;
          if (!apply(ns, params)) {
            return false;
          }
          ++config_gen_;
          return true;
        },
        &config_gen_);
  };
  double_knob("cpu_util_threshold", &core::Params::cpu_util_threshold);
  double_knob("mem_use_threshold", &core::Params::mem_use_threshold);
  double_knob("mem_growth_frac", &core::Params::mem_growth_frac);
  double_knob("ewma_alpha", &core::Params::ewma_alpha);
  double_knob("cpu_down_threshold", &core::Params::cpu_down_threshold);
  double_knob("mem_down_threshold", &core::Params::mem_down_threshold);
  double_knob("prop_gain", &core::Params::prop_gain);

  fs_.register_writable(
      dir + "cpu_step",
      [this, id]() -> std::string {
        const auto ns = monitor_.lookup(id);
        return ns ? strf("%d\n", ns->params().cpu_step) : "none\n";
      },
      [this, id, apply](std::string_view v) {
        const auto ns = monitor_.lookup(id);
        const auto value = parse_i64(v);
        if (ns == nullptr || !value) {
          return false;
        }
        core::Params params = ns->params();
        params.cpu_step = static_cast<int>(*value);
        if (!apply(ns, params)) {
          return false;
        }
        ++config_gen_;
        return true;
      },
      &config_gen_);
  fs_.register_writable(
      dir + "mem_prediction_gate",
      [this, id]() -> std::string {
        const auto ns = monitor_.lookup(id);
        return ns ? strf("%d\n", ns->params().mem_prediction_gate ? 1 : 0)
                  : "none\n";
      },
      [this, id, apply](std::string_view v) {
        const auto ns = monitor_.lookup(id);
        const auto value = parse_i64(v);
        if (ns == nullptr || !value || (*value != 0 && *value != 1)) {
          return false;
        }
        core::Params params = ns->params();
        params.mem_prediction_gate = *value == 1;
        if (!apply(ns, params)) {
          return false;
        }
        ++config_gen_;
        return true;
      },
      &config_gen_);
}

void VirtualSysfs::export_cgroup_files(cgroup::CgroupId id) {
  ARV_ASSERT(tree_.exists(id));
  const std::string name = tree_.get(id).name();

  const std::string cpu_dir = "/sys/fs/cgroup/cpu/" + name + "/";
  fs_.register_writable(
      cpu_dir + "cpu.shares",
      [this, id] { return strf("%lld\n", static_cast<long long>(tree_.get(id).cpu().shares)); },
      [this, id](std::string_view v) {
        const auto value = parse_i64(v);
        if (!value || *value < 2) {
          return false;
        }
        tree_.set_cpu_shares(id, *value);
        return true;
      },
      &config_gen_);
  fs_.register_writable(
      cpu_dir + "cpu.cfs_quota_us",
      [this, id] {
        const auto quota = tree_.get(id).cpu().cfs_quota_us;
        return strf("%lld\n", static_cast<long long>(quota == kUnlimited ? -1 : quota));
      },
      [this, id](std::string_view v) {
        const auto value = parse_i64(v);
        if (!value || (*value <= 0 && *value != -1)) {
          return false;
        }
        tree_.set_cfs_quota(id, *value == -1 ? kUnlimited : *value);
        return true;
      },
      &config_gen_);
  fs_.register_writable(
      cpu_dir + "cpu.cfs_period_us",
      [this, id] { return strf("%lld\n", static_cast<long long>(tree_.get(id).cpu().cfs_period_us)); },
      [this, id](std::string_view v) {
        const auto value = parse_i64(v);
        if (!value || *value < 1000) {
          return false;
        }
        tree_.set_cfs_period(id, *value);
        return true;
      },
      &config_gen_);

  fs_.register_writable(
      "/sys/fs/cgroup/cpuset/" + name + "/cpuset.cpus",
      [this, id] { return tree_.get(id).cpu().cpuset.to_string() + "\n"; },
      [this, id](std::string_view v) {
        const auto mask = CpuSet::parse(v);
        if (!mask || mask->span() > tree_.online_cpus()) {
          return false;
        }
        tree_.set_cpuset(id, *mask);
        return true;
      },
      &config_gen_);

  const std::string mem_dir = "/sys/fs/cgroup/memory/" + name + "/";
  fs_.register_writable(
      mem_dir + "memory.limit_in_bytes",
      [this, id] { return strf("%lld\n", static_cast<long long>(tree_.get(id).mem().limit_in_bytes)); },
      [this, id](std::string_view v) {
        const auto value = parse_i64(v);
        if (!value || *value <= 0) {
          return false;
        }
        tree_.set_mem_limit(id, *value);
        return true;
      },
      &config_gen_);
  fs_.register_writable(
      mem_dir + "memory.soft_limit_in_bytes",
      [this, id] {
        return strf("%lld\n", static_cast<long long>(tree_.get(id).mem().soft_limit_in_bytes));
      },
      [this, id](std::string_view v) {
        const auto value = parse_i64(v);
        if (!value || *value <= 0) {
          return false;
        }
        tree_.set_mem_soft_limit(id, *value);
        return true;
      },
      &config_gen_);
  fs_.register_file(mem_dir + "memory.usage_in_bytes",
                    [this, id] { return strf("%lld\n", static_cast<long long>(memory_.usage(id))); });

  // --- cgroup v2 (unified hierarchy) views of the same knobs ----------------
  const std::string v2_dir = "/sys/fs/cgroup/unified/" + name + "/";
  fs_.register_writable(
      v2_dir + "cpu.max",
      [this, id] {
        const auto& cfg = tree_.get(id).cpu();
        if (cfg.cfs_quota_us == kUnlimited) {
          return strf("max %lld\n", static_cast<long long>(cfg.cfs_period_us));
        }
        return strf("%lld %lld\n", static_cast<long long>(cfg.cfs_quota_us),
                    static_cast<long long>(cfg.cfs_period_us));
      },
      [this, id](std::string_view v) {
        const auto fields = split(std::string(trim(v)), ' ');
        if (fields.empty() || fields.size() > 2) {
          return false;
        }
        std::int64_t quota = kUnlimited;
        if (fields[0] != "max") {
          const auto parsed = parse_i64(fields[0]);
          if (!parsed || *parsed <= 0) {
            return false;
          }
          quota = *parsed;
        }
        if (fields.size() == 2) {
          const auto period = parse_i64(fields[1]);
          if (!period || *period < 1000) {
            return false;
          }
          tree_.set_cfs_period(id, *period);
        }
        tree_.set_cfs_quota(id, quota);
        return true;
      },
      &config_gen_);
  fs_.register_writable(
      v2_dir + "cpu.weight",
      [this, id] {
        // Kernel mapping: weight = 1 + ((shares - 2) * 9999) / 262142.
        const std::int64_t shares = tree_.get(id).cpu().shares;
        return strf("%lld\n",
                    static_cast<long long>(1 + (shares - 2) * 9999 / 262142));
      },
      [this, id](std::string_view v) {
        const auto weight = parse_i64(v);
        if (!weight || *weight < 1 || *weight > 10000) {
          return false;
        }
        // Inverse of the kernel mapping: shares = 2 + (weight - 1)*262142/9999.
        tree_.set_cpu_shares(id, 2 + (*weight - 1) * 262142 / 9999);
        return true;
      },
      &config_gen_);
  fs_.register_writable(
      v2_dir + "memory.max",
      [this, id] {
        const Bytes limit = tree_.get(id).mem().limit_in_bytes;
        return limit == kUnlimited
                   ? std::string("max\n")
                   : strf("%lld\n", static_cast<long long>(limit));
      },
      [this, id](std::string_view v) {
        if (trim(v) == "max") {
          return false;  // raising to unlimited is not modeled
        }
        const auto value = parse_i64(v);
        if (!value || *value <= 0) {
          return false;
        }
        tree_.set_mem_limit(id, *value);
        return true;
      },
      &config_gen_);
  fs_.register_writable(
      v2_dir + "memory.low",
      [this, id] {
        const Bytes soft = tree_.get(id).mem().soft_limit_in_bytes;
        return soft == kUnlimited ? std::string("0\n")
                                  : strf("%lld\n", static_cast<long long>(soft));
      },
      [this, id](std::string_view v) {
        const auto value = parse_i64(v);
        if (!value || *value <= 0) {
          return false;
        }
        tree_.set_mem_soft_limit(id, *value);
        return true;
      },
      &config_gen_);
  fs_.register_file(v2_dir + "memory.current", [this, id] {
    return strf("%lld\n", static_cast<long long>(memory_.usage(id)));
  });
  fs_.register_file(v2_dir + "cpu.stat", [this, id] {
    const auto stats = scheduler_.stats(id);
    return strf("usage_usec %lld\nthrottled_usec %lld\n",
                static_cast<long long>(stats.total_usage),
                static_cast<long long>(stats.throttled_time));
  });

  register_policy_files(id, name);
}

std::shared_ptr<core::SysNamespace> VirtualSysfs::sys_ns_of(proc::Pid pid) const {
  if (!processes_.exists(pid)) {
    return nullptr;
  }
  const auto ns = processes_.namespace_of(pid, proc::Namespace::Kind::kSys);
  return std::dynamic_pointer_cast<core::SysNamespace>(ns);
}

std::optional<std::string> VirtualSysfs::read(proc::Pid pid,
                                              const std::string& path) const {
  // §3.2: "when a process probes system resources and is linked to its own
  // namespaces other than the init namespaces, a virtual sysfs is created
  // for this process" — queries are redirected to the per-container view.
  if (const auto ns = sys_ns_of(pid)) {
    if (path == kCpuOnlinePath) {
      return CpuSet::first_n(ns->effective_cpus()).to_string() + "\n";
    }
    if (path == kMeminfoPath) {
      const Bytes total = ns->effective_memory();
      const Bytes used = memory_.usage(ns->cgroup());
      return meminfo_for(total, std::max<Bytes>(0, total - used));
    }
    if (path == kCpuinfoPath) {
      return cpuinfo_cached(ns->effective_cpus());
    }
    if (path.rfind(kTracePrefix, 0) == 0) {
      if (const auto value = trace_counter_for(*ns, path.substr(
              std::string(kTracePrefix).size()))) {
        return strf("%lld\n", static_cast<long long>(*value));
      }
    }
  }
  return fs_.read(path);
}

std::optional<std::int64_t> VirtualSysfs::trace_counter_for(
    const core::SysNamespace& ns, const std::string& counter) const {
  if (counter == "e_cpu") {
    return ns.effective_cpus();
  }
  if (counter == "e_mem") {
    return ns.effective_memory();
  }
  if (counter == "cpu_lower") {
    return ns.cpu_bounds().lower;
  }
  if (counter == "cpu_upper") {
    return ns.cpu_bounds().upper;
  }
  if (counter == "mem_soft") {
    return ns.mem_soft_limit();
  }
  if (counter == "mem_hard") {
    return ns.mem_hard_limit();
  }
  if (counter == "cpu_updates") {
    return static_cast<std::int64_t>(ns.cpu_updates());
  }
  if (counter == "mem_updates") {
    return static_cast<std::int64_t>(ns.mem_updates());
  }
  if (counter == "mem_usage") {
    return memory_.usage(ns.cgroup());
  }
  if (counter == "cpu_usage") {
    return scheduler_.total_usage(ns.cgroup());
  }
  // Decision-reason tallies: why the policy moved (or held) the effective
  // values, e.g. /sys/arv/trace/cpu_grew.
  const auto decisions = [&](const core::DecisionCounters& c,
                             std::string_view reason)
      -> std::optional<std::int64_t> {
    if (reason == "grew") {
      return static_cast<std::int64_t>(c.grew);
    }
    if (reason == "shrank") {
      return static_cast<std::int64_t>(c.shrank);
    }
    if (reason == "clamped") {
      return static_cast<std::int64_t>(c.clamped);
    }
    if (reason == "reset") {
      return static_cast<std::int64_t>(c.reset);
    }
    if (reason == "held") {
      return static_cast<std::int64_t>(c.held);
    }
    return std::nullopt;
  };
  if (counter.rfind("cpu_", 0) == 0) {
    return decisions(ns.cpu_decisions(), std::string_view(counter).substr(4));
  }
  if (counter.rfind("mem_", 0) == 0) {
    return decisions(ns.mem_decisions(), std::string_view(counter).substr(4));
  }
  return std::nullopt;
}

void VirtualSysfs::register_control_file(const std::string& path,
                                         FileProvider provider,
                                         const Generation* generation) {
  ARV_ASSERT_MSG(path.rfind("/sys/arv/", 0) == 0,
                 "control files live under /sys/arv/");
  fs_.register_file(path, std::move(provider), generation);
}

void VirtualSysfs::remove_control_subtree(const std::string& prefix) {
  ARV_ASSERT_MSG(prefix.rfind("/sys/arv/", 0) == 0,
                 "control files live under /sys/arv/");
  fs_.remove_subtree(prefix);
}

void VirtualSysfs::attach_trace(const obs::TraceRecorder* trace) {
  trace_ = trace;
  if (trace_ == nullptr) {
    // Detach: the files stay registered (the vfs has no unregister), but
    // their lambdas guard on trace_ so reads degrade to empty instead of
    // dereferencing null.
    return;
  }
  fs_.register_file(std::string(kTracePrefix) + "series", [this] {
    std::string out;
    if (trace_ == nullptr) {
      return out;
    }
    for (const std::string& name : trace_->series_names()) {
      out += name;
      out += '\n';
    }
    return out;
  });
  fs_.register_file(std::string(kTracePrefix) + "samples", [this] {
    if (trace_ == nullptr) {
      return std::string();
    }
    return strf("%zu\n", trace_->sample_count());
  });
}

bool VirtualSysfs::write(const std::string& path, std::string_view value) {
  return fs_.write(path, value);
}

long VirtualSysfs::sysconf(proc::Pid pid, Sysconf name) const {
  const auto ns = sys_ns_of(pid);
  switch (name) {
    case Sysconf::kNProcessorsOnln:
    case Sysconf::kNProcessorsConf:
      return ns ? ns->effective_cpus() : scheduler_.online_cpus();
    case Sysconf::kPhysPages: {
      const Bytes total = ns ? ns->effective_memory() : memory_.total_ram();
      return static_cast<long>(total / units::page);
    }
    case Sysconf::kAvPhysPages: {
      if (ns) {
        const Bytes avail = ns->effective_memory() - memory_.usage(ns->cgroup());
        return static_cast<long>(std::max<Bytes>(0, avail) / units::page);
      }
      return static_cast<long>(memory_.free_memory() / units::page);
    }
    case Sysconf::kPageSize:
      return static_cast<long>(units::page);
  }
  return -1;
}

}  // namespace arv::vfs
