// PseudoFs — a generic in-memory pseudo-filesystem (the sysfs/procfs
// substrate). Files are backed by content providers evaluated at read time,
// and optionally by write handlers (cgroup knob files write through to the
// cgroup tree, exactly like echoing into /sys/fs/cgroup/...).
//
// Files whose content is a pure function of configuration (knob files,
// cpu/online, ...) can opt into generation-based render caching: the caller
// supplies a pointer to a generation counter it bumps whenever the
// underlying configuration changes, and the rendered string is reused until
// the counter moves. Files backed by runtime accounting (meminfo, cpu.stat)
// must stay uncached — their content changes without any generation bump.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace arv::vfs {

using FileProvider = std::function<std::string()>;
/// Returns false when the written value is rejected (EINVAL analogue).
using WriteHandler = std::function<bool(std::string_view)>;
/// Render-cache invalidation counter; see register_file. Monotonicity is not
/// required — any change invalidates.
using Generation = std::uint64_t;

class PseudoFs {
 public:
  /// Register/replace a read-only file. A non-null `generation` enables
  /// render caching: the provider is re-evaluated only when *generation
  /// differs from the value at the last render. The counter must outlive
  /// the entry.
  void register_file(const std::string& path, FileProvider provider,
                     const Generation* generation = nullptr);

  /// Register/replace a writable file (same caching contract; writes that
  /// change content must bump the generation, directly or via the change
  /// events the write handler triggers).
  void register_writable(const std::string& path, FileProvider provider,
                         WriteHandler on_write,
                         const Generation* generation = nullptr);

  /// Remove a file or (with a trailing '/')-free prefix removal of a subtree.
  void remove(const std::string& path);
  void remove_subtree(const std::string& prefix);

  bool exists(const std::string& path) const;

  /// Read the file's current content; nullopt if absent (ENOENT).
  std::optional<std::string> read(const std::string& path) const;

  /// Write to a file; false if absent, read-only, or the value is rejected.
  bool write(const std::string& path, std::string_view value);

  /// All registered paths under a prefix (sorted) — readdir analogue.
  std::vector<std::string> list(const std::string& prefix) const;

  std::size_t file_count() const { return files_.size(); }

  /// Provider evaluations skipped thanks to the render cache (observability
  /// for tests and the overhead bench).
  std::uint64_t render_cache_hits() const { return cache_hits_; }

 private:
  struct Entry {
    FileProvider provider;
    WriteHandler on_write;  // null => read-only
    const Generation* generation = nullptr;  // null => render every read
    mutable std::optional<std::string> rendered;
    mutable Generation rendered_gen = 0;
  };
  std::map<std::string, Entry> files_;
  mutable std::uint64_t cache_hits_ = 0;
};

}  // namespace arv::vfs
