// PseudoFs — a generic in-memory pseudo-filesystem (the sysfs/procfs
// substrate). Files are backed by content providers evaluated at read time,
// and optionally by write handlers (cgroup knob files write through to the
// cgroup tree, exactly like echoing into /sys/fs/cgroup/...).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace arv::vfs {

using FileProvider = std::function<std::string()>;
/// Returns false when the written value is rejected (EINVAL analogue).
using WriteHandler = std::function<bool(std::string_view)>;

class PseudoFs {
 public:
  /// Register/replace a read-only file.
  void register_file(const std::string& path, FileProvider provider);

  /// Register/replace a writable file.
  void register_writable(const std::string& path, FileProvider provider,
                         WriteHandler on_write);

  /// Remove a file or (with a trailing '/')-free prefix removal of a subtree.
  void remove(const std::string& path);
  void remove_subtree(const std::string& prefix);

  bool exists(const std::string& path) const;

  /// Read the file's current content; nullopt if absent (ENOENT).
  std::optional<std::string> read(const std::string& path) const;

  /// Write to a file; false if absent, read-only, or the value is rejected.
  bool write(const std::string& path, std::string_view value);

  /// All registered paths under a prefix (sorted) — readdir analogue.
  std::vector<std::string> list(const std::string& prefix) const;

  std::size_t file_count() const { return files_.size(); }

 private:
  struct Entry {
    FileProvider provider;
    WriteHandler on_write;  // null => read-only
  };
  std::map<std::string, Entry> files_;
};

}  // namespace arv::vfs
