#include "src/vfs/pseudo_fs.h"

#include "src/util/assert.h"

namespace arv::vfs {

void PseudoFs::register_file(const std::string& path, FileProvider provider,
                             const Generation* generation) {
  ARV_ASSERT(!path.empty() && path.front() == '/');
  ARV_ASSERT(provider != nullptr);
  files_[path] = Entry{std::move(provider), nullptr, generation, std::nullopt, 0};
}

void PseudoFs::register_writable(const std::string& path, FileProvider provider,
                                 WriteHandler on_write,
                                 const Generation* generation) {
  ARV_ASSERT(!path.empty() && path.front() == '/');
  ARV_ASSERT(provider != nullptr && on_write != nullptr);
  files_[path] =
      Entry{std::move(provider), std::move(on_write), generation, std::nullopt, 0};
}

void PseudoFs::remove(const std::string& path) { files_.erase(path); }

void PseudoFs::remove_subtree(const std::string& prefix) {
  const auto first = files_.lower_bound(prefix);
  auto last = first;
  while (last != files_.end() && last->first.compare(0, prefix.size(), prefix) == 0) {
    ++last;
  }
  files_.erase(first, last);
}

bool PseudoFs::exists(const std::string& path) const {
  return files_.find(path) != files_.end();
}

std::optional<std::string> PseudoFs::read(const std::string& path) const {
  const auto it = files_.find(path);
  if (it == files_.end()) {
    return std::nullopt;
  }
  const Entry& entry = it->second;
  if (entry.generation == nullptr) {
    return entry.provider();
  }
  if (entry.rendered.has_value() && entry.rendered_gen == *entry.generation) {
    ++cache_hits_;
    return entry.rendered;
  }
  // Snapshot the counter before rendering: a provider that bumps it mid-render
  // (config read triggering a lazy recompute) invalidates this render.
  const Generation gen = *entry.generation;
  entry.rendered = entry.provider();
  entry.rendered_gen = gen;
  return entry.rendered;
}

bool PseudoFs::write(const std::string& path, std::string_view value) {
  const auto it = files_.find(path);
  if (it == files_.end() || it->second.on_write == nullptr) {
    return false;
  }
  return it->second.on_write(value);
}

std::vector<std::string> PseudoFs::list(const std::string& prefix) const {
  std::vector<std::string> out;
  for (auto it = files_.lower_bound(prefix);
       it != files_.end() && it->first.compare(0, prefix.size(), prefix) == 0; ++it) {
    out.push_back(it->first);
  }
  return out;
}

}  // namespace arv::vfs
