// Colocated Java services: the paper's headline scenario as an application.
//
// Five containerized Java services share a 20-core host with equal CPU
// shares. We run the mix twice — once with stock, container-oblivious JVMs
// (15 GC threads each, sized for the whole host) and once with adaptive
// JVMs wired to the per-container resource view — and compare.
//
//   build/examples/colocated_jvms
#include <cstdio>

#include "src/harness/scenario.h"
#include "src/util/table.h"
#include "src/workloads/java_suites.h"

using namespace arv;
using namespace arv::units;

namespace {

struct ServiceMix {
  const char* service;
  const char* benchmark;  // workload model backing this service
};

constexpr ServiceMix kServices[] = {
    {"orders-db", "h2"},          {"scripting", "jython"},
    {"search", "lusearch"},       {"rendering", "sunflow"},
    {"etl", "xalan"},
};

double run_mix(bool adaptive, Table& table) {
  harness::JvmScenario scenario;
  for (const auto& service : kServices) {
    harness::JvmInstanceConfig config;
    config.container.name = service.service;
    config.container.enable_resource_view = adaptive;
    config.workload = *workloads::find_java_workload(service.benchmark);
    config.flags.kind =
        adaptive ? jvm::JvmKind::kAdaptive : jvm::JvmKind::kVanilla8;
    config.flags.dynamic_gc_threads = adaptive;
    config.flags.xmx = 3 * jvm::min_heap_of(config.workload);
    scenario.add(config);
  }
  scenario.run();

  double total = 0;
  for (const auto& result : scenario.results()) {
    table.add_row({result.container, result.benchmark,
                   adaptive ? "adaptive" : "vanilla",
                   format_duration_us(result.stats.exec_time()),
                   format_duration_us(result.stats.gc_time()),
                   std::to_string(result.stats.minor_gcs + result.stats.major_gcs)});
    total += static_cast<double>(result.stats.exec_time()) / 1e6;
  }
  return total;
}

}  // namespace

int main() {
  std::printf("Five Java services, equal shares, 20 cores.\n\n");
  Table table({"container", "workload", "jvm", "exec", "gc time", "gcs"});
  const double vanilla_total = run_mix(false, table);
  const double adaptive_total = run_mix(true, table);
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf(
      "\nTotal service time: vanilla %.2fs, adaptive %.2fs (%.0f%% saved)\n",
      vanilla_total, adaptive_total,
      100.0 * (1.0 - adaptive_total / vanilla_total));
  std::printf(
      "Each vanilla JVM woke 15 GC threads (sized for the host); each\n"
      "adaptive JVM asked its sys_namespace and sized collections to its\n"
      "effective CPUs.\n");
  return 0;
}
