// Elastic heap demo (§4.2): a cache-like service whose working set keeps
// growing inside a container with a 6 GiB hard / 2 GiB soft memory limit.
//
// The elastic JVM starts with VirtualMax at the soft limit and follows
// effective memory upward as its usage earns headroom; a vanilla JVM sized
// from host RAM blows through the hard limit and swaps.
//
//   build/examples/elastic_heap_demo
#include <cstdio>

#include "src/harness/scenario.h"
#include "src/util/table.h"
#include "src/workloads/java_suites.h"

using namespace arv;
using namespace arv::units;

namespace {

jvm::JavaWorkload cache_service() {
  jvm::JavaWorkload w;
  w.name = "cache-service";
  w.total_work = 40 * sec;
  w.mutator_threads = 8;
  w.alloc_per_cpu_sec = 256 * MiB;
  w.live_set = 512 * MiB;
  w.live_fraction_of_alloc = 0.35;  // the cache keeps growing
  w.survival_ratio = 0.45;
  return w;
}

void run_one(bool elastic) {
  harness::JvmScenario scenario;
  harness::JvmInstanceConfig config;
  config.container.name = elastic ? "elastic" : "vanilla";
  config.container.mem_limit = 6 * GiB;
  config.container.mem_soft_limit = 2 * GiB;
  config.container.enable_resource_view = elastic;
  config.workload = cache_service();
  if (elastic) {
    config.flags.kind = jvm::JvmKind::kAdaptive;
    config.flags.elastic_heap = true;
    config.flags.heap_poll_interval = 250 * msec;
  } else {
    config.flags.kind = jvm::JvmKind::kVanilla8;  // sizes heap from host RAM
  }
  const auto idx = scenario.add(config);
  harness::HeapTimeline timeline(scenario.host(), scenario.jvm(idx), 4 * sec);
  const bool finished = scenario.try_run(3600 * sec);

  const auto& jvm = scenario.jvm(idx);
  std::printf("\n--- %s JVM ---\n", elastic ? "elastic" : "vanilla");
  std::printf("%8s %10s %12s %12s\n", "t(s)", "used", "committed", "VirtualMax");
  for (const auto& s : timeline.samples()) {
    std::printf("%8.1f %10s %12s %12s\n", static_cast<double>(s.when) / 1e6,
                format_bytes(s.used).c_str(), format_bytes(s.committed).c_str(),
                format_bytes(s.virtual_max).c_str());
  }
  std::printf(
      "result: %s; exec=%s gc=%s stalls(swap)=%s swapped=%s\n",
      !finished                     ? "DID NOT FINISH"
      : jvm.stats().completed       ? "completed"
      : jvm.stats().oom_error       ? "OutOfMemoryError"
                                    : "killed",
      format_duration_us(jvm.stats().exec_time()).c_str(),
      format_duration_us(jvm.stats().gc_time()).c_str(),
      format_duration_us(jvm.stats().stall_time).c_str(),
      format_bytes(scenario.host().memory().swapped(1)).c_str());
}

}  // namespace

int main() {
  std::printf("Cache-style service in a 6 GiB hard / 2 GiB soft container.\n");
  run_one(false);
  run_one(true);
  std::printf(
      "\nThe vanilla JVM reserved phys/4 = 32 GiB and let ergonomics commit\n"
      "past the container's hard limit into swap; the elastic JVM followed\n"
      "effective memory from the soft limit up to (at most) the hard limit.\n");
  return 0;
}
