// A Kubernetes-flavoured microservice fleet on one node.
//
// Pods are declared with requests/limits (the kubelet cgroup mapping from
// src/container/k8s.h): an edge web tier, a database with a sizable cache,
// and a batch job. The same fleet runs twice — stock node vs a node with
// the adaptive resource view — and the service-level numbers are compared.
//
//   build/examples/microservice_fleet
#include <cstdio>
#include <memory>

#include "src/container/k8s.h"
#include "src/server/server_runtime.h"
#include "src/util/str.h"
#include "src/util/table.h"
#include "src/workloads/hogs.h"

using namespace arv;
using namespace arv::units;

namespace {

struct FleetResult {
  int web_workers;
  double web_p95_ms;
  double web_tput;
  Bytes db_cache;
  double db_tput;
};

FleetResult run_fleet(bool adaptive) {
  container::Host host;  // 20 CPUs / 128 GiB node
  container::ContainerRuntime kubelet(host);

  // web tier: requests 2 CPU / limits 4 CPU, 1Gi/2Gi.
  container::K8sResources web_spec;
  web_spec.request_millicpu = container::parse_cpu_quantity("2");
  web_spec.limit_millicpu = container::parse_cpu_quantity("4");
  web_spec.request_memory = container::parse_memory_quantity("1Gi");
  web_spec.limit_memory = container::parse_memory_quantity("2Gi");
  auto& web_pod =
      kubelet.run(container::pod_container("edge-web", web_spec, adaptive));
  server::WebConfig web_config;
  web_config.arrivals_per_sec = 1600;
  web_config.service_cpu = 25 * 100;  // 2.5 ms
  web_config.resize_interval = adaptive ? 500 * msec : 0;
  server::WorkerPoolServer web(host, web_pod, web_config);

  // database: requests/limits 4Gi, 4 CPUs.
  container::K8sResources db_spec;
  db_spec.limit_millicpu = container::parse_cpu_quantity("4");
  db_spec.request_memory = container::parse_memory_quantity("4Gi");
  db_spec.limit_memory = container::parse_memory_quantity("4Gi");
  auto& db_pod =
      kubelet.run(container::pod_container("orders-db", db_spec, adaptive));
  server::CacheConfig db_config;
  db_config.dataset = 6 * GiB;
  server::CacheServer db(host, db_pod, db_config);

  // best-effort batch job churning in the background.
  auto& batch_pod =
      kubelet.run(container::pod_container("nightly-batch", {}, adaptive));
  workloads::CpuHog batch(host, batch_pod, 8, 60 * sec);

  host.run_for(30 * sec);

  FleetResult result;
  result.web_workers = web.workers();
  result.web_p95_ms = web.stats().p95_ms();
  result.web_tput = web.stats().throughput_per_sec(30 * sec);
  result.db_cache = db.cache_committed();
  result.db_tput = db.stats().throughput_per_sec(30 * sec);
  return result;
}

}  // namespace

int main() {
  std::printf(
      "One node, three pods (kubelet cgroup mapping), 30 s of traffic.\n\n");
  Table table({"node", "web workers", "web p95 (ms)", "web req/s", "db cache",
               "db req/s"});
  for (const bool adaptive : {false, true}) {
    const auto r = run_fleet(adaptive);
    table.add_row({adaptive ? "adaptive resource view" : "stock",
                   std::to_string(r.web_workers), strf("%.0f", r.web_p95_ms),
                   strf("%.0f", r.web_tput), format_bytes(r.db_cache),
                   strf("%.0f", r.db_tput)});
  }
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf(
      "\nOn the stock node the web tier spawns a worker per *node* CPU and\n"
      "the database sizes its cache from *node* RAM (50%% of 127 GiB into a\n"
      "4 GiB limit => swap). Behind the view both read their effective\n"
      "capacity and size themselves sanely.\n");
  return 0;
}
