// OpenMP batch jobs under a CPU quota: why team sizing needs the resource
// view (§4.1, OpenMP case study).
//
// A scientific batch job (NPB 'cg') runs in a container capped at 4 CPUs on
// a busy 20-core host. We submit it three times, once per team-size
// strategy, and compare.
//
//   build/examples/openmp_batch
#include <cstdio>

#include "src/harness/scenario.h"
#include "src/util/table.h"
#include "src/workloads/npb.h"

using namespace arv;
using namespace arv::units;

namespace {

omp::OmpStats run_job(omp::TeamStrategy strategy, bool view, int* first_team) {
  harness::OmpScenario scenario;
  // The host has been busy for a while (loadavg window is saturated).
  scenario.host().scheduler().seed_loadavg(20.0);
  harness::OmpInstanceConfig config;
  config.container.name = "batch";
  config.container.cfs_quota_us = 400000;  // 4 CPUs
  config.container.enable_resource_view = view;
  config.strategy = strategy;
  config.workload = *workloads::find_npb("cg");
  const auto idx = scenario.add(config);
  scenario.run();
  *first_team = scenario.process(idx).team_size_trace().front();
  return scenario.process(idx).stats();
}

}  // namespace

int main() {
  std::printf("NPB 'cg' in a 4-CPU-quota container on a warm 20-core host.\n\n");
  Table table({"strategy", "first team size", "exec time", "regions"});
  struct Case {
    const char* label;
    omp::TeamStrategy strategy;
    bool view;
  };
  for (const Case c : {Case{"static (OMP_DYNAMIC=false)", omp::TeamStrategy::kStatic, false},
                       Case{"dynamic (n_onln - loadavg)", omp::TeamStrategy::kDynamic, false},
                       Case{"adaptive (E_CPU)", omp::TeamStrategy::kAdaptive, true}}) {
    int first_team = 0;
    const auto stats = run_job(c.strategy, c.view, &first_team);
    table.add_row({c.label, std::to_string(first_team),
                   format_duration_us(stats.exec_time()),
                   std::to_string(stats.regions_done)});
  }
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf(
      "\nstatic spawns one thread per *host* CPU (20 threads on a 4-CPU\n"
      "quota => context-switch overhead); dynamic subtracts the stale host\n"
      "loadavg and serializes; adaptive reads the container's effective CPU\n"
      "count from the virtual sysfs and sizes teams correctly.\n");
  return 0;
}
