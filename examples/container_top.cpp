// container_top: a `docker stats`-style live view of the simulated host.
//
// Runs a mixed fleet (two JVM services, an OpenMP job, a batch CPU hog and
// a memory hog) and prints a per-container resource table every simulated
// second: actual CPU usage, effective CPUs, memory usage, effective memory.
// Watch the effective columns track contention as containers come and go.
//
//   build/examples/container_top
#include <cstdio>

#include "src/harness/scenario.h"
#include "src/omp/omp_runtime.h"
#include "src/util/str.h"
#include "src/util/table.h"
#include "src/workloads/hogs.h"
#include "src/workloads/java_suites.h"
#include "src/workloads/npb.h"

using namespace arv;
using namespace arv::units;

namespace {

void print_top(container::Host& host, container::ContainerRuntime& docker,
               const std::vector<std::string>& names,
               std::vector<CpuTime>& last_usage) {
  std::printf("\n=== t = %.1fs   (host: %d CPUs, free mem %s, loadavg %.1f) ===\n",
              static_cast<double>(host.now()) / 1e6, host.cpus(),
              format_bytes(host.memory().free_memory()).c_str(),
              host.scheduler().loadavg());
  Table table({"container", "cpu%", "E_CPU", "mem used", "E_MEM", "swapped"});
  for (std::size_t i = 0; i < names.size(); ++i) {
    const auto* c = docker.find(names[i]);
    if (c == nullptr || !c->running()) {
      continue;
    }
    const CpuTime usage = host.scheduler().total_usage(c->cgroup());
    const double cpu_pct =
        static_cast<double>(usage - last_usage[i]) / 1e6 * 100.0;
    last_usage[i] = usage;
    const auto view = c->resource_view();
    table.add_row({c->name(), strf("%.0f%%", cpu_pct),
                   view ? std::to_string(view->effective_cpus()) : "-",
                   format_bytes(host.memory().usage(c->cgroup())),
                   view ? format_bytes(view->effective_memory()) : "-",
                   format_bytes(host.memory().swapped(c->cgroup()))});
  }
  std::fputs(table.to_ascii().c_str(), stdout);
}

}  // namespace

int main() {
  container::Host host;
  container::ContainerRuntime docker(host);

  // Two Java services.
  auto h2 = *workloads::find_java_workload("h2");
  h2.total_work = 8 * sec;
  container::ContainerConfig db_config;
  db_config.name = "orders-db";
  db_config.mem_limit = 4 * GiB;
  db_config.mem_soft_limit = 2 * GiB;
  auto& db = docker.run(db_config);
  jvm::Jvm db_jvm(host, db, {.kind = jvm::JvmKind::kAdaptive, .xmx = 2 * GiB}, h2);

  auto xalan = *workloads::find_java_workload("xalan");
  xalan.total_work = 5 * sec;
  container::ContainerConfig etl_config;
  etl_config.name = "etl";
  auto& etl = docker.run(etl_config);
  jvm::Jvm etl_jvm(host, etl,
                   {.kind = jvm::JvmKind::kAdaptive, .xmx = 1 * GiB}, xalan);

  // An OpenMP job with a quota.
  container::ContainerConfig sim_config;
  sim_config.name = "hpc-sim";
  sim_config.cfs_quota_us = 600000;
  auto& sim = docker.run(sim_config);
  omp::OmpProcess sim_job(host, sim, omp::TeamStrategy::kAdaptive,
                          *workloads::find_npb("mg"));

  // Background pressure that retires mid-run.
  container::ContainerConfig batch_config;
  batch_config.name = "batch";
  auto& batch = docker.run(batch_config);
  workloads::CpuHog batch_load(host, batch, 12, 30 * sec);

  container::ContainerConfig cache_config;
  cache_config.name = "cache";
  cache_config.mem_limit = 8 * GiB;
  cache_config.mem_soft_limit = 4 * GiB;
  auto& cache = docker.run(cache_config);
  workloads::MemHog cache_load(host, cache, 6 * GiB, 2 * GiB);

  const std::vector<std::string> names = {"orders-db", "etl", "hpc-sim", "batch",
                                          "cache"};
  std::vector<CpuTime> last_usage(names.size(), 0);
  for (int tick = 0; tick < 10; ++tick) {
    host.run_for(1 * sec);
    print_top(host, docker, names, last_usage);
  }
  std::printf("\ndone: orders-db %s, etl %s, hpc-sim %s\n",
              db_jvm.stats().completed ? "completed" : "running",
              etl_jvm.stats().completed ? "completed" : "running",
              sim_job.finished() ? "completed" : "running");
  return 0;
}
