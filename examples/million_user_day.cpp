// A compressed "day" of traffic against a 16-host fleet, with per-tenant
// SLO accounting.
//
// Three tenants share the fleet behind per-tenant routers. The
// OpenLoopDriver replays a compiled TraceSpec — diurnal curve, a lunchtime
// flash crowd, Poisson arrivals, bounded-Pareto request costs — open-loop:
// arrivals never wait on completions, so overload shows up as shed and
// burned error budget instead of a silently slowing generator. The
// SloAccountant keeps each tenant's availability / p99 / error-budget books
// and exports them at /sys/arv/slo/<tenant>/.
//
//   build/examples/million_user_day
#include <cstdio>
#include <string>

#include "src/cluster/autoscale.h"
#include "src/harness/scenario.h"
#include "src/load/driver.h"
#include "src/load/slo.h"
#include "src/load/trace_spec.h"
#include "src/util/str.h"
#include "src/util/table.h"

using namespace arv;
using namespace arv::units;

int main() {
  cluster::ClusterConfig config;
  config.seed = 7;
  harness::FleetScenario fleet(config);
  for (int i = 0; i < 16; ++i) {
    container::HostConfig host;
    host.cpus = 4;
    host.ram = 8 * GiB;
    fleet.add_host(host);
  }

  // One compressed day: 20 s of simulated time, 100 ms slots, with the
  // diurnal peak mid-day and a flash crowd on the afternoon downslope.
  load::TraceSpec spec;
  spec.duration = 20 * sec;
  spec.slot = 100 * msec;
  spec.mean_rps = 6000;
  spec.diurnal_amplitude = 0.6;
  load::FlashCrowd crowd;
  crowd.start = 12 * sec;
  crowd.ramp = 1 * sec;
  crowd.hold = 2 * sec;
  crowd.decay = 1 * sec;
  crowd.magnitude = 2.0;
  spec.flash_crowds.push_back(crowd);
  spec.seed = 1;
  spec.tenants.push_back({"web", 6.0, 200 * usec, 2 * msec, 1.3});
  spec.tenants.push_back({"api", 3.0, 500 * usec, 8 * msec, 1.3});
  spec.tenants.push_back({"batch", 1.0, 2 * msec, 30 * msec, 1.2});

  container::K8sResources res;
  res.request_millicpu = 1000;
  res.request_memory = 512 * MiB;
  res.limit_millicpu = 2000;
  server::WebConfig web;
  web.service_cpu = 1 * msec;
  web.resize_interval = 500 * msec;  // worker pools track the resource view
  cluster::PodSpec pod;
  pod.view_policy = "paper";  // every replica sees the adaptive view

  struct Tier {
    const char* tenant;
    int replicas;
    load::SloTarget slo;
  };
  const Tier tiers[] = {
      {"web", 8, {999, 100 * msec}},
      {"api", 6, {995, 250 * msec}},
      {"batch", 4, {990, 1 * sec}},
  };
  for (const Tier& tier : tiers) {
    fleet.add_tenant(tier.tenant);
    for (int i = 0; i < tier.replicas; ++i) {
      fleet.place_tenant_web_pod(tier.tenant, res, web, pod);
    }
  }
  fleet.use_trace(load::compile(spec));
  for (const Tier& tier : tiers) {
    fleet.declare_slo(tier.tenant, tier.slo);
  }
  fleet.enable_vpa();

  fleet.run(spec.duration);

  std::printf("one day, %llu requests across %zu tenants on 16 hosts\n\n",
              static_cast<unsigned long long>(fleet.driver()->injected()),
              std::size(tiers));
  Table table({"tenant", "injected", "avail(‰)", "target(‰)", "p99(ms)",
               "budget(‰)", "SLO"});
  for (const Tier& tier : tiers) {
    table.add_row(
        {tier.tenant,
         std::to_string(fleet.driver()->injected(tier.tenant)),
         std::to_string(fleet.slo()->availability_permille(tier.tenant)),
         std::to_string(tier.slo.availability_permille),
         strf("%.2f",
              static_cast<double>(fleet.slo()->p99_us(tier.tenant)) / 1000.0),
         std::to_string(fleet.slo()->budget_remaining_permille(tier.tenant)),
         fleet.slo()->attaining(tier.tenant) ? "attained" : "VIOLATED"});
  }
  std::fputs(table.to_ascii().c_str(), stdout);

  // The same numbers are a control-plane read away, like any other view.
  const auto p99 =
      fleet.cluster().host(0).sysfs().host_fs().read("/sys/arv/slo/web/p99_us");
  std::printf("\n$ cat /sys/arv/slo/web/p99_us\n%s",
              p99 ? p99->c_str() : "(missing)\n");
  return 0;
}
