// Quickstart: the semantic gap, and how the adaptive resource view closes it.
//
// Creates a simulated 20-core / 128 GiB host, starts two containers — one
// stock (no resource view) and one with the per-container sys_namespace —
// and shows what applications inside each of them see while host load
// changes underneath.
//
//   build/examples/quickstart
#include <cstdio>

#include "src/container/container.h"
#include "src/util/table.h"
#include "src/workloads/hogs.h"

using namespace arv;
using namespace arv::units;

namespace {

void show(container::Host& host, container::Container& c, const char* moment) {
  const proc::Pid pid = c.init_pid();
  const auto online = host.sysfs().read(pid, "/sys/devices/system/cpu/online");
  const long cpus = host.sysfs().sysconf(pid, vfs::Sysconf::kNProcessorsOnln);
  const long pages = host.sysfs().sysconf(pid, vfs::Sysconf::kPhysPages);
  std::printf("  [%s] %-8s sees: online=%-6s nprocs=%-3ld phys_mem=%.1f GiB\n",
              moment, c.name().c_str(),
              online ? std::string(*online, 0, online->size() - 1).c_str() : "?",
              cpus,
              static_cast<double>(pages) * static_cast<double>(units::page) /
                  static_cast<double>(GiB));
}

}  // namespace

int main() {
  container::Host host;  // defaults: 20 CPUs, 128 GiB (the paper's testbed)
  container::ContainerRuntime docker(host);

  std::printf("Host: %d CPUs, %s RAM\n\n", host.cpus(),
              format_bytes(host.memory().total_ram()).c_str());

  // A stock container: resource view disabled, 4-CPU quota, 2 GiB limit.
  container::ContainerConfig stock_config;
  stock_config.name = "stock";
  stock_config.cfs_quota_us = 400000;
  stock_config.mem_limit = 2 * GiB;
  stock_config.enable_resource_view = false;
  auto& stock = docker.run(stock_config);

  // The same limits, but with the paper's per-container sys_namespace.
  container::ContainerConfig adaptive_config = stock_config;
  adaptive_config.name = "adaptive";
  adaptive_config.mem_soft_limit = 1 * GiB;
  adaptive_config.enable_resource_view = true;
  auto& adaptive = docker.run(adaptive_config);

  std::printf("Both containers have --cpu-quota=400000 (4 CPUs) and "
              "--memory=2g.\n\nAt idle:\n");
  host.run_for(100 * msec);
  show(host, stock, "idle");
  show(host, adaptive, "idle");
  std::printf("  -> the stock container sees the WHOLE host (the semantic "
              "gap);\n     the adaptive one sees its effective 4 CPUs and "
              "1 GiB soft limit.\n\n");

  // Saturate the adaptive container: it uses its full quota, and the host
  // has slack, so effective CPU stays pinned at the quota.
  workloads::CpuHog own_load(host, adaptive, 8, 3600 * sec);
  host.run_for(2 * sec);
  std::printf("After 2s of 8-thread load inside 'adaptive':\n");
  show(host, adaptive, "busy");
  std::printf("  -> still 4: cfs_quota is a hard ceiling (Algorithm 1, "
              "line 5).\n\n");

  // Lift the quota: now only the share of contention matters; with the host
  // otherwise idle, the view expands toward the whole machine.
  adaptive.update_cfs_quota(kUnlimited);
  host.run_for(2 * sec);
  std::printf("After `docker update --cpu-quota=-1 adaptive` and 2s more:\n");
  show(host, adaptive, "freed");
  std::printf("  -> the view expanded (work-conserving host, slack CPU "
              "absorbed).\n\n");

  // A noisy neighbour shows up and saturates the host.
  container::ContainerConfig noisy_config;
  noisy_config.name = "noisy";
  auto& noisy = docker.run(noisy_config);
  workloads::CpuHog noise(host, noisy, 32, 3600 * sec);
  host.run_for(3 * sec);
  std::printf("After a noisy neighbour saturates the host for 3s:\n");
  show(host, adaptive, "contended");
  std::printf("  -> the view retreated toward the fair share "
              "(20 cores / 3 containers).\n");
  std::printf("\nThe stock container still sees 20 CPUs through all of "
              "this:\n");
  show(host, stock, "any");
  return 0;
}
