// A multi-host fleet: placement, routing, and corrective rebalancing.
//
// Four simulated hosts on one deterministic clock. Twelve single-threaded
// web replicas — each *requesting* two CPUs it will never burn — are placed
// twice: once with the kube-style "requests" strategy (which believes the
// declared numbers and runs out of room), once with "effective" (which
// scores hosts by observed slack and free memory, and places everything).
// A RequestRouter spreads an open-loop stream over whichever replicas got
// scheduled; the fleet-level throughput and tail latency show the cost of
// trusting requests.
//
//   build/examples/cluster_fleet
#include <cstdio>
#include <string>

#include "src/cluster/pod_workloads.h"
#include "src/harness/scenario.h"
#include "src/util/str.h"
#include "src/util/table.h"

using namespace arv;
using namespace arv::units;

namespace {

struct FleetNumbers {
  int placed = 0;
  double throughput = 0;
  double p95_ms = 0;
};

FleetNumbers run_fleet(const std::string& strategy) {
  harness::FleetScenario fleet;
  for (int i = 0; i < 4; ++i) {
    container::HostConfig host;
    host.cpus = 4;
    host.ram = 16 * GiB;
    fleet.add_host(host);
  }
  fleet.enable_router(2400);  // fleet-wide requests/sec
  fleet.enable_rebalancer();

  container::K8sResources spec;
  spec.request_millicpu = container::parse_cpu_quantity("2");  // overstated
  spec.request_memory = container::parse_memory_quantity("1Gi");
  server::WebConfig web;
  web.sizing = server::Sizing::kFixed;
  web.fixed_workers = 1;  // the replica's *actual* capacity: one CPU
  web.service_cpu = 4 * msec;

  FleetNumbers numbers;
  for (int i = 0; i < 12; ++i) {
    if (fleet.place_web_pod(strategy, spec, web) >= 0) {
      ++numbers.placed;
    }
  }
  fleet.run(30 * sec);
  const server::RequestStats stats = fleet.router()->aggregate();
  numbers.throughput = stats.throughput_per_sec(30 * sec);
  numbers.p95_ms = stats.p95_ms();
  return numbers;
}

}  // namespace

int main() {
  std::printf(
      "Placing 12 replicas (2-CPU requests, 1-CPU reality) on 4x4 CPUs...\n");
  Table table({"strategy", "placed", "throughput/s", "p95(ms)"});
  for (const std::string strategy : {"requests", "effective"}) {
    const FleetNumbers n = run_fleet(strategy);
    table.add_row({strategy, std::to_string(n.placed),
                   strf("%.0f", n.throughput), strf("%.1f", n.p95_ms)});
  }
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf(
      "\nThe \"requests\" scheduler refuses a third of the fleet on paper\n"
      "capacity that was never really used; \"effective\" places it all.\n");
  return 0;
}
