// §5.4 overhead table: the cost of maintaining and querying the adaptive
// resource view, measured on *this* implementation with real wall-clock
// timing (google-benchmark proper). The paper reports, on its testbed:
// sys_namespace update ~1 us; sysconf effective-CPU query ~5 us; effective-
// memory query ~100 us.
#include <benchmark/benchmark.h>

#include <memory>

#include "bench/common.h"
#include "src/workloads/hogs.h"

namespace {

using namespace arv;
using namespace arv::bench;

struct OverheadFixture {
  explicit OverheadFixture(int containers) : host(paper_host()), runtime(host) {
    for (int i = 0; i < containers; ++i) {
      container::ContainerConfig config;
      config.name = "c" + std::to_string(i);
      config.mem_limit = 4 * GiB;
      config.mem_soft_limit = 2 * GiB;
      containers_.push_back(&runtime.run(config));
      hogs.push_back(std::make_unique<workloads::CpuHog>(
          host, *containers_.back(), 2, 36000 * sec));
    }
    host.run_for(100 * msec);  // warm up usage counters
  }

  container::Host host;
  container::ContainerRuntime runtime;
  std::vector<container::Container*> containers_;
  std::vector<std::unique_ptr<workloads::CpuHog>> hogs;
};

/// One full Ns_Monitor round (all registered sys_namespaces): the paper's
/// "update to a sys_namespace takes 1 us" analogue, amortized per container.
void BM_SysNamespaceUpdateRound(benchmark::State& state) {
  OverheadFixture fixture(static_cast<int>(state.range(0)));
  SimTime fake_now = fixture.host.now();
  for (auto _ : state) {
    fake_now += 24000;
    fixture.host.monitor().update_all(fake_now);
  }
  state.counters["containers"] =
      static_cast<double>(fixture.host.monitor().registered_count());
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SysNamespaceUpdateRound)->Arg(1)->Arg(5)->Arg(10)->Arg(50);

/// sysconf(_SC_NPROCESSORS_ONLN) through the virtual sysfs (effective CPU).
void BM_SysconfEffectiveCpu(benchmark::State& state) {
  OverheadFixture fixture(5);
  const proc::Pid pid = fixture.containers_[0]->init_pid();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fixture.host.sysfs().sysconf(pid, vfs::Sysconf::kNProcessorsOnln));
  }
}
BENCHMARK(BM_SysconfEffectiveCpu);

/// sysconf(_SC_PHYS_PAGES) — the effective-memory query path.
void BM_SysconfEffectiveMemory(benchmark::State& state) {
  OverheadFixture fixture(5);
  const proc::Pid pid = fixture.containers_[0]->init_pid();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fixture.host.sysfs().sysconf(pid, vfs::Sysconf::kPhysPages));
  }
}
BENCHMARK(BM_SysconfEffectiveMemory);

/// Reading /sys/devices/system/cpu/online from inside a container (string
/// materialization included, like a real read(2) of the pseudo-file).
void BM_VirtualSysfsCpuOnlineRead(benchmark::State& state) {
  OverheadFixture fixture(5);
  const proc::Pid pid = fixture.containers_[0]->init_pid();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fixture.host.sysfs().read(pid, "/sys/devices/system/cpu/online"));
  }
}
BENCHMARK(BM_VirtualSysfsCpuOnlineRead);

/// Reading /proc/meminfo from inside a container.
void BM_VirtualSysfsMeminfoRead(benchmark::State& state) {
  OverheadFixture fixture(5);
  const proc::Pid pid = fixture.containers_[0]->init_pid();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.host.sysfs().read(pid, "/proc/meminfo"));
  }
}
BENCHMARK(BM_VirtualSysfsMeminfoRead);

/// Host-side knob write (docker update): includes the cgroup notification
/// fan-out that refreshes every registered sys_namespace.
void BM_CgroupKnobWrite(benchmark::State& state) {
  OverheadFixture fixture(5);
  std::int64_t shares = 1024;
  for (auto _ : state) {
    shares = shares == 1024 ? 2048 : 1024;
    fixture.host.sysfs().write("/sys/fs/cgroup/cpu/c0/cpu.shares",
                               std::to_string(shares));
  }
}
BENCHMARK(BM_CgroupKnobWrite);

/// One simulated scheduler tick at increasing container counts — the cost
/// of the whole fluid CFS model, for calibration.
void BM_SchedulerTick(benchmark::State& state) {
  OverheadFixture fixture(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    fixture.host.engine().step();
  }
  state.counters["containers"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_SchedulerTick)->Arg(1)->Arg(5)->Arg(20);

}  // namespace

BENCHMARK_MAIN();
