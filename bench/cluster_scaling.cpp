// Cluster engine scaling: wall-clock cost of a simulated second as the
// fleet grows, across host-phase thread counts and with the idle-host skip
// on/off.
//
// The fleet shape is the datacenter-realistic one: work concentrates on a
// few hosts (12 busy of up to 256) while the rest idle — exactly where the
// serial no-skip engine burns its time stepping hosts that do nothing. Each
// fleet size runs once on the legacy configuration (threads=1, skip off)
// and then at threads 1/2/4/8 with the quiescence skip on; every
// configuration must produce identical request counters (asserted), because
// threading and skipping are performance features, never semantic ones.
//
// The scaling curve is spliced into BENCH_cluster.json (override the path
// with ARV_CLUSTER_OUT) next to cluster_placement's results; re-runs
// replace a previous curve in place. `hardware_threads` records how many
// cores actually backed the thread grid — on a 1-core runner the
// thread-count rows measure overhead, and the skip column carries the
// speedup.
#include <benchmark/benchmark.h>

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "src/cluster/pod_workloads.h"
#include "src/cluster/router.h"
#include "src/util/assert.h"

namespace {

using namespace arv;
using namespace arv::bench;

constexpr int kHostCpus = 4;
constexpr int kBusyHosts = 12;  ///< hosts that actually receive pods
constexpr SimDuration kSim = 3 * units::sec;
const int kFleetSizes[] = {16, 64, 256};
const int kThreadGrid[] = {1, 2, 4, 8};

struct ScalingPoint {
  int hosts = 0;
  int threads = 0;
  bool skip = false;
  double wall_ms = 0;
  double sim_s_per_wall_s = 0;
  double speedup_vs_serial = 0;  ///< vs threads=1 + skip off, same fleet
  std::uint64_t hosts_skipped = 0;
  std::uint64_t generated = 0;
  std::uint64_t completed = 0;
};

ScalingPoint run_point(int hosts, int threads, bool skip) {
  cluster::ClusterConfig config;
  config.seed = 42;
  config.threads = threads;
  config.skip_idle_hosts = skip;
  harness::FleetScenario fleet(config);
  for (int i = 0; i < hosts; ++i) {
    container::HostConfig host;
    host.cpus = kHostCpus;
    host.ram = 16 * units::GiB;
    fleet.add_host(host);
  }
  const int busy = std::min(hosts, kBusyHosts);
  fleet.enable_router(40.0 * busy);
  server::WebConfig web;
  web.sizing = server::Sizing::kFixed;
  web.fixed_workers = 1;
  web.service_cpu = 4 * units::msec;
  container::K8sResources res;
  res.request_millicpu = 1000;
  res.request_memory = 1 * units::GiB;
  for (int h = 0; h < busy; ++h) {
    cluster::Cluster& cluster = fleet.cluster();
    const int pod = cluster.create_pod(h, {"web-" + std::to_string(h), res},
                                       cluster::web_replica(web));
    if (!fleet.router()->add_replica(pod)) {
      std::abort();
    }
  }

  const auto start = std::chrono::steady_clock::now();
  fleet.run(kSim);
  const double wall_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          std::chrono::steady_clock::now() - start)
          .count();

  ScalingPoint point;
  point.hosts = hosts;
  point.threads = fleet.cluster().threads();
  point.skip = skip;
  point.wall_ms = wall_ms;
  point.sim_s_per_wall_s =
      static_cast<double>(kSim) / units::sec / (wall_ms / 1000.0);
  point.hosts_skipped = fleet.cluster().hosts_skipped();
  point.generated = fleet.router()->generated();
  point.completed = fleet.router()->aggregate().completed;
  return point;
}

void write_json(const std::vector<ScalingPoint>& points) {
  const char* env = std::getenv("ARV_CLUSTER_OUT");
  const std::string path =
      (env != nullptr && env[0] != '\0') ? env : "BENCH_cluster.json";
  std::string head;
  {
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    head = buffer.str();
  }
  // Splice next to cluster_placement's members: truncate a previous curve
  // in place, else open the closing brace of whatever is there.
  const std::size_t marker = head.find("\"scaling_curve\"");
  if (marker != std::string::npos) {
    head.resize(marker);
    while (!head.empty() && (std::isspace(static_cast<unsigned char>(
                                 head.back())) != 0 ||
                             head.back() == ',')) {
      head.pop_back();
    }
  } else {
    while (!head.empty() &&
           std::isspace(static_cast<unsigned char>(head.back())) != 0) {
      head.pop_back();
    }
    if (!head.empty() && head.back() == '}') {
      head.pop_back();
    }
    while (!head.empty() &&
           std::isspace(static_cast<unsigned char>(head.back())) != 0) {
      head.pop_back();
    }
  }
  if (head.empty()) {
    head = "{\n  \"bench\": \"cluster_scaling\"";
  }
  if (head.back() != '{') {
    head += ',';
  }

  std::ofstream out(path);
  out << head << "\n  \"scaling_curve\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const ScalingPoint& p = points[i];
    out << strf(
        "    {\"hosts\": %d, \"threads\": %d, \"skip_idle\": %s, "
        "\"wall_ms\": %.1f, \"sim_s_per_wall_s\": %.2f, "
        "\"speedup_vs_serial\": %.2f, \"hosts_skipped\": %llu}%s\n",
        p.hosts, p.threads, p.skip ? "true" : "false", p.wall_ms,
        p.sim_s_per_wall_s, p.speedup_vs_serial,
        static_cast<unsigned long long>(p.hosts_skipped),
        i + 1 < points.size() ? "," : "");
  }
  out << strf("  ],\n  \"hardware_threads\": %u\n}\n",
              std::thread::hardware_concurrency());
  if (!out) {
    std::fprintf(stderr, "cluster_scaling: failed to write %s\n", path.c_str());
  } else {
    std::printf("wrote %s\n", path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  print_header("Cluster engine scaling",
               strf("%d busy of N hosts, %.0f sim-s per point; serial "
                    "baseline = threads=1 + skip off",
                    kBusyHosts, static_cast<double>(kSim) / units::sec));
  std::vector<ScalingPoint> points;
  for (const int hosts : kFleetSizes) {
    ScalingPoint serial = run_point(hosts, 1, /*skip=*/false);
    serial.speedup_vs_serial = 1.0;
    points.push_back(serial);
    for (const int threads : kThreadGrid) {
      ScalingPoint point = run_point(hosts, threads, /*skip=*/true);
      point.speedup_vs_serial = serial.wall_ms / point.wall_ms;
      // Threading and skipping must be invisible in every simulated
      // observable — a divergence here is an engine bug, not noise.
      ARV_ASSERT_MSG(point.generated == serial.generated &&
                         point.completed == serial.completed,
                     "scaling configuration changed simulation results");
      points.push_back(point);
    }
  }

  Table table({"hosts", "threads", "skip", "wall(ms)", "sim-s/wall-s",
               "speedup", "skipped"});
  for (const ScalingPoint& p : points) {
    table.add_row({std::to_string(p.hosts), std::to_string(p.threads),
                   p.skip ? "on" : "off", strf("%.1f", p.wall_ms),
                   strf("%.2f", p.sim_s_per_wall_s),
                   strf("%.2fx", p.speedup_vs_serial),
                   std::to_string(p.hosts_skipped)});
  }
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf(
      "expected: speedup grows with fleet size — idle hosts dominate large "
      "fleets, and the skip + shards reclaim them.\n");
  write_json(points);

  arv::bench::register_case("cluster_scaling/16x4",
                            [] { run_point(16, 4, true); });
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
