// Figure 8: static CPU shares (JDK 10) vs effective CPU under varying CPU
// availability. Ten equal-share containers: one runs a DaCapo benchmark,
// nine run sysbench jobs that finish at different times, freeing CPUs.
//
//   (a) GC time normalized to vanilla      (b) GC threads over the run (sunflow)
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"

namespace {

using namespace arv;
using namespace arv::bench;

struct Fig8Run {
  jvm::JvmStats stats;
  std::vector<jvm::GcThreadSample> trace;
};

Fig8Run run_fig8(const jvm::JavaWorkload& w, jvm::JvmFlags flags, bool view,
                 const std::string& trace_label = {}) {
  harness::JvmScenario scenario(paper_host());
  // The sysbench co-runners start first and retire one by one while the
  // benchmark is still running, freeing CPUs mid-flight.
  for (int i = 0; i < 9; ++i) {
    scenario.add_cpu_hog({}, 4, (i + 1) * sec);
  }
  harness::JvmInstanceConfig config;
  config.container.name = "dacapo";
  config.container.enable_resource_view = view;
  config.flags = flags;
  config.flags.xmx = paper_xmx(w);
  config.workload = w;
  const auto idx = scenario.add(config);
  scenario.run(7200 * sec);
  if (!trace_label.empty()) {
    maybe_dump_trace(scenario.host(), trace_label);
  }
  return {scenario.jvm(idx).stats(), scenario.jvm(idx).gc_thread_trace()};
}

void print_fig8a() {
  print_header("Figure 8(a)", "GC time normalized to vanilla (lower is better)");
  Table table({"benchmark", "Vanilla", "JVM10", "Adaptive"});
  for (const auto& w : workloads::dacapo_suite()) {
    const auto vanilla = run_fig8(
        w, {.kind = jvm::JvmKind::kVanilla8, .dynamic_gc_threads = false}, false);
    const auto jvm10 = run_fig8(w, {.kind = jvm::JvmKind::kJdk10}, false);
    const auto adaptive = run_fig8(w, {.kind = jvm::JvmKind::kAdaptive}, true);
    const double base = static_cast<double>(vanilla.stats.gc_time());
    table.add_row({w.name, "1.00",
                   strf("%.2f", static_cast<double>(jvm10.stats.gc_time()) / base),
                   strf("%.2f", static_cast<double>(adaptive.stats.gc_time()) / base)});
  }
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf(
      "paper shape: JVM10 already far below vanilla (15 static threads);\n"
      "adaptive beats JVM10 by up to ~42%% except on short benchmarks that\n"
      "finish before the view can adapt.\n");
}

void print_fig8b() {
  print_header("Figure 8(b)",
               "GC threads across collections, sunflow (CSV: index,vanilla,jvm10,adaptive)");
  const auto w = workloads::dacapo_suite()[3];  // sunflow
  const auto vanilla =
      run_fig8(w, {.kind = jvm::JvmKind::kVanilla8, .dynamic_gc_threads = false},
               false, "fig8_" + w.name + "_vanilla");
  const auto jvm10 =
      run_fig8(w, {.kind = jvm::JvmKind::kJdk10}, false, "fig8_" + w.name + "_jvm10");
  const auto adaptive = run_fig8(w, {.kind = jvm::JvmKind::kAdaptive}, true,
                                 "fig8_" + w.name + "_adaptive");
  const std::size_t n = std::max(
      {vanilla.trace.size(), jvm10.trace.size(), adaptive.trace.size()});
  auto at = [](const std::vector<jvm::GcThreadSample>& trace, std::size_t i) {
    return i < trace.size() ? std::to_string(trace[i].workers) : std::string("-");
  };
  std::printf("gc_index,vanilla,jvm10,adaptive\n");
  for (std::size_t i = 0; i < n; i += 2) {
    std::printf("%zu,%s,%s,%s\n", i, at(vanilla.trace, i).c_str(),
                at(jvm10.trace, i).c_str(), at(adaptive.trace, i).c_str());
  }
  std::printf(
      "paper shape: vanilla pinned at 15, JVM10 pinned at 2, adaptive climbs\n"
      "as sysbench containers free their CPUs.\n");
}

}  // namespace

int main(int argc, char** argv) {
  print_fig8a();
  print_fig8b();
  arv::bench::register_case("fig8/sunflow/adaptive", [] {
    run_fig8(workloads::dacapo_suite()[3], {.kind = jvm::JvmKind::kAdaptive}, true);
  });
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
