// Profile-driven vs slack-driven placement under correlated bursty services.
//
// The trap this bench sets is the one C-Balancer (arXiv:2009.08912) aims at:
// a scale-out decision made during a trough. Two services share one router's
// on/off arrival stream, so their bursts are perfectly correlated; four
// steady hogs burn half of every other host. Between bursts the bursty
// hosts are the *idlest-looking* machines in the fleet (a web pod at rest
// burns only its always-runnable listener), so slack-driven ("effective")
// placement stacks the new replicas exactly where the next burst will land
// on top of them. Profile-driven ("profile") placement reads the same
// trough, but the per-service usage series say the quiet hosts burst
// together — the same-service and correlation penalties push the replicas
// onto the hog hosts, whose load is high but *flat*.
//
// Both runs replay the identical warm-up, scale-out, and measurement load;
// only the placement strategy differs. Reported per run:
//   violations   co-resident pod pairs, right after the scale-out, whose
//                services are identical or profile-correlated (> 300
//                permille) — the co-residency mistakes the strategy made;
//   migrations   how often the (profiled) rebalancer had to repair the
//                placement reactively during the measurement phase;
//   p50/p95/p99  request latency over the whole run (warm-up is identical,
//                so the deltas are the measurement phase's);
//   shed         requests refused at full replica queues.
//
// Expected: "profile" places with zero violations, needs no rebalancing,
// and clearly beats "effective" on p95/p99 — spreading bursts across flat
// hosts beats stacking them on machines that are only idle between bursts
// and paying for the mistake in queueing delay and repair migrations.
//
// Results go to BENCH_profile.json (override with ARV_PROFILE_OUT).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/cluster/fleet_view.h"
#include "src/cluster/pod_workloads.h"
#include "src/cluster/profile.h"
#include "src/cluster/rebalancer.h"
#include "src/cluster/router.h"
#include "src/harness/scenario.h"
#include "src/util/stats.h"

namespace {

using namespace arv;
using namespace arv::bench;

constexpr int kHosts = 6;  // h0/h1 seed the bursty services, h2..h5 run hogs
constexpr int kScaleOut = 2;  // extra replicas per bursty service
constexpr SimDuration kOn = 200 * units::msec;
constexpr SimDuration kOff = 300 * units::msec;
constexpr int kWarmupCycles = 4;
constexpr int kMeasureCycles = 8;
constexpr double kWarmupRate = 200.0;   // 2 replicas: ~2 CPUs each per burst
constexpr double kMeasureRate = 600.0;  // 6 replicas: same per-replica burst
constexpr std::int64_t kCorrelated = 300;  // permille; violation threshold

container::K8sResources res(std::int64_t millicpu, Bytes memory) {
  container::K8sResources r;
  r.request_millicpu = millicpu;
  r.request_memory = memory;
  return r;
}

struct PlacementResult {
  std::string name;
  int violations = 0;
  std::vector<int> placed_hosts;  // scale-out landings, placement order
  std::uint64_t migrations = 0;   // reactive repairs the rebalancer needed
  std::uint64_t generated = 0;
  double availability_pct = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  std::uint64_t shed = 0;
};

/// Co-resident pod pairs whose services are the same or profile-correlated:
/// every such pair is a burst the strategy stacked onto one machine.
int count_violations(const cluster::FleetView& view,
                     const cluster::ProfileStore& profiles) {
  int violations = 0;
  for (int h = 0; h < view.host_count(); ++h) {
    const int begin = view.host_pod_offsets[static_cast<std::size_t>(h)];
    const int end = view.host_pod_offsets[static_cast<std::size_t>(h) + 1];
    for (int i = begin; i < end; ++i) {
      for (int j = i + 1; j < end; ++j) {
        const cluster::PodRow& a =
            view.pods[static_cast<std::size_t>(view.host_pod_ids[i])];
        const cluster::PodRow& b =
            view.pods[static_cast<std::size_t>(view.host_pod_ids[j])];
        const std::string& sa = view.service_name(a.service);
        const std::string& sb = view.service_name(b.service);
        if (sa == sb ||
            profiles.service_correlation_permille(sa, sb) > kCorrelated) {
          ++violations;
        }
      }
    }
  }
  return violations;
}

PlacementResult run_strategy(const std::string& strategy) {
  cluster::ClusterConfig config;
  config.seed = 42;
  harness::FleetScenario fleet(config);
  for (int i = 0; i < kHosts; ++i) {
    container::HostConfig host;
    host.cpus = 4;
    host.ram = 8 * units::GiB;
    fleet.add_host(host);
  }
  fleet.enable_router(0.0);
  cluster::ProfileConfig profiles;
  profiles.period = 50 * units::msec;
  profiles.window_rounds = 16;
  profiles.min_samples = 4;
  fleet.enable_profiles(profiles);
  fleet.use_placement(strategy);
  // The profiled rebalancer may repair a bad placement reactively — its
  // migration count is the price of getting the placement wrong up front.
  cluster::RebalanceConfig rebalance;
  rebalance.period = 100 * units::msec;
  rebalance.saturated_rounds = 2;
  rebalance.cooldown = 1 * units::sec;
  rebalance.min_residency = 500 * units::msec;
  fleet.enable_rebalancer(rebalance);

  // 20 ms of service per request: bursts push queue depth past one worker,
  // so usage actually rises above the web runtime's ~1000m listener floor
  // (an idle pod's floor — the reason troughs look idle in the first place).
  server::WebConfig web;
  web.service_cpu = 20 * units::msec;
  web.max_queue = 200;

  // Seed replicas on h0/h1; steady two-thread hogs half-load h2..h5.
  std::vector<int> replicas;
  for (int s = 0; s < 2; ++s) {
    cluster::PodSpec spec;
    spec.service = s == 0 ? "svc-a" : "svc-b";
    spec.name = spec.service + "-0";
    spec.resources = res(500, 512 * units::MiB);
    const int pod =
        fleet.cluster().create_pod(s, spec, cluster::web_replica(web));
    fleet.router()->add_replica(pod);
    replicas.push_back(pod);
  }
  for (int h = 2; h < kHosts; ++h) {
    cluster::PodSpec spec;
    spec.service = "batch-" + std::to_string(h);
    spec.name = spec.service + "-0";
    spec.resources = res(500, 512 * units::MiB);
    fleet.cluster().create_pod(h, spec,
                               cluster::cpu_hog_workload(2, 10000 * units::sec));
  }

  auto cycle = [&fleet](double rate, int count) {
    for (int i = 0; i < count; ++i) {
      fleet.router()->set_rate(rate);
      fleet.run(kOn);
      fleet.router()->set_rate(0.0);
      fleet.run(kOff);
    }
  };
  cycle(kWarmupRate, kWarmupCycles);

  // Scale out in the trough — the strategy sees the fleet at its most
  // deceptive: the bursty hosts idle at the listener floor, the hog hosts
  // visibly half-loaded.
  PlacementResult result;
  result.name = strategy;
  for (int r = 1; r <= kScaleOut; ++r) {
    for (int s = 0; s < 2; ++s) {
      cluster::PodSpec spec;
      spec.service = s == 0 ? "svc-a" : "svc-b";
      spec.name = spec.service + "-" + std::to_string(r);
      spec.resources = res(500, 512 * units::MiB);
      const int pod =
          fleet.scheduler().place(strategy, spec, cluster::web_replica(web));
      ARV_ASSERT_MSG(pod >= 0, "scale-out placement failed");
      fleet.router()->add_replica(pod);
      replicas.push_back(pod);
      result.placed_hosts.push_back(fleet.cluster().pod(pod).host);
    }
  }
  // Judge the placement decision itself, before the rebalancer can paper
  // over it: every correlated co-residency here is the strategy's mistake.
  result.violations =
      count_violations(fleet.cluster().fleet_view(), *fleet.profiles());

  cycle(kMeasureRate, kMeasureCycles);

  result.migrations = fleet.rebalancer()->migrations();
  const cluster::RequestRouter& r = *fleet.router();
  result.generated = r.generated();
  result.availability_pct =
      result.generated == 0
          ? 100.0
          : 100.0 * static_cast<double>(r.routed()) /
                static_cast<double>(result.generated);
  const server::RequestStats agg = r.aggregate();
  result.p50_ms = agg.percentile_ms(50.0);
  result.p95_ms = agg.percentile_ms(95.0);
  result.p99_ms = agg.percentile_ms(99.0);
  result.shed = r.shed();
  return result;
}

std::string hosts_json(const std::vector<int>& hosts) {
  std::string out = "[";
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    out += (i == 0 ? "" : ",") + std::to_string(hosts[i]);
  }
  return out + "]";
}

void write_json(const std::vector<PlacementResult>& results) {
  const char* env = std::getenv("ARV_PROFILE_OUT");
  const std::string path =
      (env != nullptr && env[0] != '\0') ? env : "BENCH_profile.json";
  std::ofstream out(path);
  out << "{\n  \"bench\": \"profile_placement\",\n"
      << strf("  \"fleet\": {\"hosts\": %d, \"scale_out\": %d, "
              "\"warmup_cycles\": %d, \"measure_cycles\": %d, "
              "\"measure_rate_per_sec\": %.0f},\n",
              kHosts, 2 * kScaleOut, kWarmupCycles, kMeasureCycles,
              kMeasureRate)
      << "  \"runs\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const PlacementResult& r = results[i];
    out << strf(
        "    {\"name\": \"%s\", \"violations\": %d, "
        "\"placed_hosts\": %s, \"migrations\": %llu,\n"
        "     \"generated\": %llu, \"availability_pct\": %.3f, "
        "\"p50_ms\": %.2f, \"p95_ms\": %.2f, \"p99_ms\": %.2f, "
        "\"shed\": %llu}%s\n",
        r.name.c_str(), r.violations, hosts_json(r.placed_hosts).c_str(),
        static_cast<unsigned long long>(r.migrations),
        static_cast<unsigned long long>(r.generated), r.availability_pct,
        r.p50_ms, r.p95_ms, r.p99_ms,
        static_cast<unsigned long long>(r.shed),
        i + 1 < results.size() ? "," : "");
  }
  out << "  ]\n}\n";
  if (!out) {
    std::fprintf(stderr, "profile_placement: failed to write %s\n",
                 path.c_str());
  } else {
    std::printf("wrote %s\n", path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  print_header(
      "Profile-driven vs slack-driven placement",
      strf("%d hosts; two services bursting on one shared stream, %d steady "
           "hogs; scale-out happens in a trough, when the bursty hosts look "
           "idlest",
           kHosts, kHosts - 2));
  std::vector<PlacementResult> results;
  results.push_back(run_strategy("effective"));
  results.push_back(run_strategy("profile"));
  {
    Table table({"strategy", "violations", "placed_hosts", "migrations",
                 "avail(%)", "p50(ms)", "p95(ms)", "p99(ms)", "shed"});
    for (const PlacementResult& r : results) {
      table.add_row({r.name, std::to_string(r.violations),
                     hosts_json(r.placed_hosts), std::to_string(r.migrations),
                     strf("%.3f", r.availability_pct), strf("%.2f", r.p50_ms),
                     strf("%.2f", r.p95_ms), strf("%.2f", r.p99_ms),
                     std::to_string(r.shed)});
    }
    std::fputs(table.to_ascii().c_str(), stdout);
  }
  std::printf(
      "expected: profile placement lands the scale-out with zero correlated "
      "co-residencies and beats effective on p95/p99 — the hosts that look "
      "idle in the trough are the ones that burst together.\n");

  write_json(results);
  arv::bench::register_case("profile_placement/effective",
                            [] { run_strategy("effective"); });
  arv::bench::register_case("profile_placement/profile",
                            [] { run_strategy("profile"); });
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
