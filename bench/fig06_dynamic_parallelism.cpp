// Figure 6: vanilla vs dynamic vs adaptive JVMs, five identical containers
// with equal shares on 20 cores (§5.2's "well-tuned environment").
//
//   (a) DaCapo execution time, normalized to vanilla (lower is better)
//   (b) SPECjvm2008 throughput, normalized to vanilla (higher is better)
//   (c) GC time for both suites, normalized to vanilla (lower is better)
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"

namespace {

using namespace arv;
using namespace arv::bench;

struct Fig6Row {
  ColocatedResult vanilla;
  ColocatedResult dynamic;
  ColocatedResult adaptive;
};

Fig6Row run_fig6(const jvm::JavaWorkload& w) {
  const auto stock = [](int, container::ContainerConfig& config) {
    config.enable_resource_view = false;
  };
  Fig6Row row;
  jvm::JvmFlags vanilla{.kind = jvm::JvmKind::kVanilla8,
                        .dynamic_gc_threads = false,
                        .xmx = paper_xmx(w)};
  jvm::JvmFlags dynamic{.kind = jvm::JvmKind::kVanilla8,
                        .dynamic_gc_threads = true,
                        .xmx = paper_xmx(w)};
  jvm::JvmFlags adaptive{.kind = jvm::JvmKind::kAdaptive, .xmx = paper_xmx(w)};
  const SimDuration deadline = 7200 * sec;
  row.vanilla = run_colocated(w, vanilla, 5, stock, deadline,
                              "fig6_" + w.name + "_vanilla");
  row.dynamic = run_colocated(w, dynamic, 5, stock, deadline,
                              "fig6_" + w.name + "_dynamic");
  row.adaptive = run_colocated(w, adaptive, 5, {}, deadline,  // view on
                               "fig6_" + w.name + "_adaptive");
  return row;
}

void print_fig6() {
  print_header("Figure 6(a)",
               "DaCapo execution time relative to vanilla (lower is better)");
  std::vector<std::pair<std::string, Fig6Row>> gc_rows;
  {
    Table table({"benchmark", "Vanilla", "Dynamic", "Adaptive"});
    for (const auto& w : workloads::dacapo_suite()) {
      const auto row = run_fig6(w);
      table.add_row({w.name, "1.00",
                     strf("%.2f", row.dynamic.mean_exec_s / row.vanilla.mean_exec_s),
                     strf("%.2f", row.adaptive.mean_exec_s / row.vanilla.mean_exec_s)});
      gc_rows.emplace_back(w.name, row);
    }
    std::fputs(table.to_ascii().c_str(), stdout);
    std::printf("paper shape: adaptive up to ~49%% faster than vanilla.\n");
  }

  print_header("Figure 6(b)",
               "SPECjvm2008 throughput relative to vanilla (higher is better)");
  {
    Table table({"benchmark", "Vanilla", "Dynamic", "Adaptive"});
    for (const auto& w : workloads::specjvm_suite()) {
      const auto row = run_fig6(w);
      // Throughput ~ 1 / execution time for a fixed operation count.
      table.add_row({w.name, "1.00",
                     strf("%.2f", row.vanilla.mean_exec_s / row.dynamic.mean_exec_s),
                     strf("%.2f", row.vanilla.mean_exec_s / row.adaptive.mean_exec_s)});
      gc_rows.emplace_back(w.name, row);
    }
    std::fputs(table.to_ascii().c_str(), stdout);
    std::printf("paper shape: adaptive up to ~18%% higher throughput;\n"
                "mpegaudio (allocation-light) barely moves.\n");
  }

  print_header("Figure 6(c)", "GC time relative to vanilla (lower is better)");
  {
    Table table({"benchmark", "Vanilla", "Dynamic", "Adaptive"});
    for (const auto& [name, row] : gc_rows) {
      table.add_row({name, "1.00",
                     strf("%.2f", row.dynamic.mean_gc_s / row.vanilla.mean_gc_s),
                     strf("%.2f", row.adaptive.mean_gc_s / row.vanilla.mean_gc_s)});
    }
    std::fputs(table.to_ascii().c_str(), stdout);
    std::printf("paper shape: most of the end-to-end gain comes from GC time.\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  print_fig6();
  arv::bench::register_case("fig6/h2/adaptive", [] {
    const auto w = workloads::dacapo_suite()[0];
    run_colocated(w, {.kind = jvm::JvmKind::kAdaptive, .xmx = paper_xmx(w)}, 5);
  });
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
