#include "bench/common.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>

namespace arv::bench {

std::optional<std::string> trace_dump_dir() {
  const char* dir = std::getenv("ARV_TRACE_DIR");
  if (dir == nullptr || dir[0] == '\0') {
    return std::nullopt;
  }
  return std::string(dir);
}

void maybe_dump_trace(const container::Host& host, const std::string& label) {
  const auto dir = trace_dump_dir();
  if (!dir.has_value() || host.trace() == nullptr) {
    return;
  }
  std::string slug = label;
  for (char& c : slug) {
    if (c == '/' || c == ' ') {
      c = '_';
    }
  }
  const std::string base = *dir + "/" + slug;
  std::ofstream csv(base + ".csv");
  csv << host.trace()->to_csv();
  std::ofstream json(base + ".json");
  json << host.trace()->to_json();
  if (!csv || !json) {
    std::fprintf(stderr, "trace: cannot write %s.{csv,json} — does %s exist?\n",
                 base.c_str(), dir->c_str());
    return;
  }
  std::printf("trace: %s.{csv,json} (%zu samples, %zu series)\n", base.c_str(),
              host.trace()->sample_count(), host.trace()->series_count());
}

ColocatedResult run_colocated(
    const jvm::JavaWorkload& workload, const jvm::JvmFlags& flags, int n,
    const std::function<void(int, container::ContainerConfig&)>& tweak,
    SimDuration deadline, const std::string& trace_label) {
  harness::JvmScenario scenario(paper_host());
  for (int i = 0; i < n; ++i) {
    harness::JvmInstanceConfig config;
    config.container.name = "c" + std::to_string(i);
    config.flags = flags;
    config.workload = workload;
    if (tweak) {
      tweak(i, config.container);
    }
    scenario.add(config);
  }
  scenario.run(deadline);
  if (!trace_label.empty()) {
    maybe_dump_trace(scenario.host(), trace_label);
  }

  ColocatedResult result;
  for (const auto& run : scenario.results()) {
    result.mean_exec_s +=
        static_cast<double>(run.stats.end_time - run.stats.start_time) / 1e6;
    result.mean_gc_s += static_cast<double>(run.stats.gc_time()) / 1e6;
    result.completed += run.stats.completed ? 1 : 0;
    result.oom_errors += run.stats.oom_error ? 1 : 0;
    result.killed += run.stats.killed ? 1 : 0;
  }
  result.mean_exec_s /= n;
  result.mean_gc_s /= n;
  return result;
}

void register_case(const std::string& name, std::function<void()> fn) {
  benchmark::RegisterBenchmark(name.c_str(), [fn = std::move(fn)](
                                                 benchmark::State& state) {
    for (auto _ : state) {
      fn();
    }
  })->Unit(benchmark::kMillisecond)->Iterations(1);
}

void print_header(const std::string& figure, const std::string& description) {
  std::printf("\n=== %s — %s ===\n", figure.c_str(), description.c_str());
}

}  // namespace arv::bench
