// Extension study (beyond the paper's two case studies): the two
// auto-configuration patterns behind most of Figure 1's "affected" images,
// measured the way operators feel them — throughput and tail latency.
//
//   E1: worker-pool web server (`worker_processes auto;`) on quota-limited
//       containers: host-detected vs effective-CPU worker counts.
//   E2: cache-sizing database (cache = 50% of detected RAM) in containers
//       of various sizes: host-detected vs effective-memory cache.
//   E3: graceful-reload elasticity: the adaptive server resizes its pool
//       as co-runners retire.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "bench/common.h"
#include "src/server/server_runtime.h"
#include "src/workloads/hogs.h"

namespace {

using namespace arv;
using namespace arv::bench;

void ext_web_server() {
  print_header("Extension E1",
               "worker-pool web server, 5 containers with 4-core quotas, "
               "overloaded (p95 ms / throughput per container)");
  Table table({"sizing", "workers", "p95 (ms)", "req/s", "drops"});
  for (const bool view : {false, true}) {
    container::Host host(paper_host());
    container::ContainerRuntime runtime(host);
    std::vector<std::unique_ptr<server::WorkerPoolServer>> servers;
    for (int i = 0; i < 5; ++i) {
      container::ContainerConfig config;
      config.name = "web" + std::to_string(i);
      config.cfs_quota_us = 400000;  // 4 CPUs
      config.enable_resource_view = view;
      auto& c = runtime.run(config);
      server::WebConfig web;
      web.arrivals_per_sec = 1800;       // ~4.5 CPUs of demand on 4
      web.service_cpu = 25 * 100;        // 2.5 ms
      servers.push_back(
          std::make_unique<server::WorkerPoolServer>(host, c, web));
    }
    host.run_for(15 * sec);
    double p95 = 0;
    double tput = 0;
    std::uint64_t drops = 0;
    for (const auto& srv : servers) {
      p95 += srv->stats().p95_ms();
      tput += srv->stats().throughput_per_sec(15 * sec);
      drops += srv->dropped();
    }
    table.add_row({view ? "effective (adaptive view)" : "detected (host CPUs)",
                   std::to_string(servers[0]->workers()), strf("%.0f", p95 / 5),
                   strf("%.0f", tput / 5), std::to_string(drops)});
  }
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf(
      "expected: 20 workers on 4 effective CPUs pay coordination and quota-\n"
      "throttling jitter; effective-sized pools serve more with a lower tail.\n");
}

void ext_cache_server() {
  print_header("Extension E2",
               "cache-sizing database (cache = 50% of detected RAM) in a "
               "memory-limited container");
  Table table({"container limit", "sizing", "cache target", "hit ratio",
               "req/s", "p95 (ms)"});
  for (const Bytes limit : {2 * GiB, 4 * GiB, 8 * GiB}) {
    for (const bool view : {false, true}) {
      container::Host host(paper_host());
      container::ContainerRuntime runtime(host);
      container::ContainerConfig config;
      config.name = "db";
      config.mem_limit = limit;
      config.mem_soft_limit = limit;
      config.enable_resource_view = view;
      auto& c = runtime.run(config);
      server::CacheConfig cache;
      cache.dataset = 4 * GiB;
      server::CacheServer srv(host, c, cache);
      host.run_for(30 * sec);
      table.add_row({format_bytes(limit), view ? "effective" : "detected",
                     format_bytes(srv.cache_target()),
                     strf("%.2f", srv.hit_ratio()),
                     strf("%.0f", srv.stats().throughput_per_sec(30 * sec)),
                     strf("%.1f", srv.stats().p95_ms())});
    }
  }
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf(
      "expected: the detected 63.5 GiB cache target swaps against every\n"
      "limit; the effective target fits and throughput recovers (with hit\n"
      "ratio growing as the limit allows a bigger cache).\n");
}

void ext_graceful_reload() {
  print_header("Extension E3",
               "graceful reload: adaptive worker pool tracking freed CPUs");
  container::Host host(paper_host());
  container::ContainerRuntime runtime(host);
  // Nine sysbench co-runners retiring over time, as in Figure 8.
  std::vector<std::unique_ptr<workloads::CpuHog>> hogs;
  for (int i = 0; i < 9; ++i) {
    container::ContainerConfig config;
    config.name = "hog" + std::to_string(i);
    auto& c = runtime.run(config);
    hogs.push_back(
        std::make_unique<workloads::CpuHog>(host, c, 4, (i + 1) * 2 * sec));
  }
  container::ContainerConfig config;
  config.name = "web";
  auto& c = runtime.run(config);
  server::WebConfig web;
  web.arrivals_per_sec = 4000;
  web.service_cpu = 4 * msec;  // 16 CPUs of demand
  web.resize_interval = 500 * msec;
  server::WorkerPoolServer srv(host, c, web);
  host.run_for(25 * sec);
  std::printf("worker pool over time:");
  for (const int workers : srv.worker_trace()) {
    std::printf(" %d", workers);
  }
  std::printf("\nfinal p95 %.0f ms, %.0f req/s\n", srv.stats().p95_ms(),
              srv.stats().throughput_per_sec(25 * sec));
  std::printf(
      "expected: the pool starts at the fair share (2 of 20 CPUs among 10\n"
      "containers) and climbs as sysbench containers retire.\n");
}

}  // namespace

int main(int argc, char** argv) {
  ext_web_server();
  ext_cache_server();
  ext_graceful_reload();
  arv::bench::register_case("ext/web/adaptive", [] {
    container::Host host(paper_host());
    container::ContainerRuntime runtime(host);
    auto& c = runtime.run({});
    server::WorkerPoolServer srv(host, c, {});
    host.run_for(1 * sec);
  });
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
