// Ablation studies for the design choices DESIGN.md §5 calls out.
//
//   A. What the view exports: none (stock sysfs) vs static limits (LXCFS /
//      cgroup-namespace, the §1 related work) vs effective capacity (the
//      paper). Identical runtime everywhere — only the view varies.
//   B. Algorithm 1's UTIL_THRSHD (95%) and ±1 step size.
//   C. Algorithm 2's growth increment and the free-memory prediction gate.
//   D. The GC-thread formula min(N, N_active, E_CPU) vs dropping a term.
//   E. The update interval: scheduling-period-coupled vs fixed timers.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"
#include "src/workloads/java_suites.h"

namespace {

using namespace arv;
using namespace arv::bench;

// --- A: view modes ----------------------------------------------------------

void ablation_view_modes() {
  print_header("Ablation A", "what the per-container view exports "
                             "(5 containers, 10-core limits, same runtime; "
                             "one column per registered policy)");
  // The old hard-coded none/LXCFS/adaptive triple, generalized: every policy
  // in the registry gets a column, so a newly-registered policy shows up in
  // the ablation without touching this file.
  const auto policies = core::PolicyRegistry::instance().cpu_names();
  std::vector<std::string> headers = {"benchmark", "no view (host values)"};
  for (const auto& policy : policies) {
    headers.push_back(policy);
  }
  Table table(headers);
  for (const auto& w : workloads::dacapo_suite()) {
    auto run_policy = [&](bool view, const std::string& policy) {
      // dynamic_gc_threads off: the view is the *only* thread bound, so the
      // ablation isolates what the view exports.
      jvm::JvmFlags flags{.kind = jvm::JvmKind::kAdaptive,
                          .dynamic_gc_threads = false,
                          .xmx = paper_xmx(w)};
      return run_colocated(w, flags, 5,
                           [&](int, container::ContainerConfig& config) {
                             config.cfs_quota_us = 1000000;  // 10 cores
                             config.enable_resource_view = view;
                             config.view_params.cpu_policy = policy;
                             config.view_params.mem_policy = policy;
                           })
          .mean_exec_s;
    };
    const double none = run_policy(false, "paper");
    std::vector<std::string> row = {w.name, "1.00"};
    for (const auto& policy : policies) {
      row.push_back(strf("%.2f", run_policy(true, policy) / none));
    }
    table.add_row(row);
  }
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf(
      "expected: exporting static limits helps a little (10 < 20 threads),\n"
      "but only the adaptive policies reflect the 4-core reality (§1's\n"
      "LXCFS critique).\n");
}

// --- B: UTIL_THRSHD and step size -------------------------------------------

struct Fig8Like {
  double exec_s;
  double gc_s;
  int final_e_cpu;
};

Fig8Like run_fig8_like(core::Params params) {
  const auto w = workloads::dacapo_suite()[3];  // sunflow
  harness::JvmScenario scenario(paper_host());
  for (int i = 0; i < 9; ++i) {
    scenario.add_cpu_hog({}, 4, (i + 1) * sec);
  }
  harness::JvmInstanceConfig config;
  config.container.name = "dacapo";
  config.container.view_params = params;
  config.flags.kind = jvm::JvmKind::kAdaptive;
  config.flags.dynamic_gc_threads = false;  // the view is the only bound
  config.flags.xmx = paper_xmx(w);
  config.workload = w;
  const auto idx = scenario.add(config);
  scenario.run(7200 * sec);
  const auto view = scenario.runtime().find("dacapo")->resource_view();
  return {static_cast<double>(scenario.jvm(idx).stats().exec_time()) / 1e6,
          static_cast<double>(scenario.jvm(idx).stats().gc_time()) / 1e6,
          view->effective_cpus()};
}

void ablation_threshold_and_step() {
  print_header("Ablation B", "Algorithm 1: UTIL_THRSHD and step size "
                             "(Figure-8 scenario, sunflow exec seconds)");
  {
    Table table({"UTIL_THRSHD", "exec(s)", "gc(s)", "final E_CPU"});
    for (const double threshold : {0.50, 0.80, 0.90, 0.95, 0.99}) {
      core::Params params;
      params.cpu_util_threshold = threshold;
      const auto r = run_fig8_like(params);
      table.add_row({strf("%.2f", threshold), strf("%.2f", r.exec_s),
                     strf("%.3f", r.gc_s), std::to_string(r.final_e_cpu)});
    }
    std::fputs(table.to_ascii().c_str(), stdout);
  }
  {
    Table table({"cpu_step", "exec(s)", "gc(s)", "final E_CPU"});
    for (const int step : {1, 2, 4, 8}) {
      core::Params params;
      params.cpu_step = step;
      const auto r = run_fig8_like(params);
      table.add_row({std::to_string(step), strf("%.2f", r.exec_s),
                     strf("%.3f", r.gc_s), std::to_string(r.final_e_cpu)});
    }
    std::fputs(table.to_ascii().c_str(), stdout);
  }
  std::printf(
      "expected: low thresholds over-expand into contention; huge steps\n"
      "oscillate; the paper's 0.95/±1 sits at or near the minimum.\n");
}

// --- C: memory growth increment + prediction gate ----------------------------

void ablation_memory_growth() {
  print_header("Ablation C", "Algorithm 2: growth increment and prediction "
                             "gate (3 leak containers, 40 GiB host)");
  Table table({"growth frac", "gate", "completed", "kswapd wakeups",
               "mean committed (GiB)", "swap stalls (s)"});
  for (const double frac : {0.05, 0.10, 0.30, 1.00}) {
    for (const bool gate : {true, false}) {
      container::HostConfig host_config = paper_host();
      host_config.ram = 48 * GiB;  // == sum of hard limits: overshoot hurts
      harness::JvmScenario scenario(host_config);
      auto w = workloads::alloc_microbench();
      w.total_work = 30 * sec;
      w.alloc_per_cpu_sec = 800 * MiB;
      std::vector<std::size_t> ids;
      for (int i = 0; i < 3; ++i) {
        harness::JvmInstanceConfig config;
        config.container.name = "c" + std::to_string(i);
        config.container.mem_limit = 16 * GiB;
        config.container.mem_soft_limit = 6 * GiB;
        config.container.view_params.mem_growth_frac = frac;
        config.container.view_params.mem_prediction_gate = gate;
        config.flags.kind = jvm::JvmKind::kAdaptive;
        config.flags.elastic_heap = true;
        config.flags.heap_poll_interval = 250 * msec;
        config.workload = w;
        ids.push_back(scenario.add(config));
      }
      scenario.try_run(7200 * sec);
      int completed = 0;
      double committed = 0;
      double stalls = 0;
      for (const auto id : ids) {
        completed += scenario.jvm(id).stats().completed ? 1 : 0;
        committed += static_cast<double>(scenario.jvm(id).heap().committed()) /
                     static_cast<double>(GiB);
        stalls += static_cast<double>(scenario.jvm(id).stats().stall_time) / 1e6;
      }
      table.add_row({strf("%.2f", frac), gate ? "on" : "OFF",
                     strf("%d/3", completed),
                     std::to_string(scenario.host().memory().kswapd_wakeups()),
                     strf("%.1f", committed / 3.0), strf("%.2f", stalls)});
    }
  }
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf(
      "expected: without the gate (or with aggressive increments) effective\n"
      "memory overshoots and kswapd churns; the gated 10%% step converges\n"
      "with little reclaim activity.\n");
}

// --- D: the GC-thread formula -------------------------------------------------

void ablation_gc_formula() {
  print_header("Ablation D", "N_gc formula (Figure-6 scenario, exec seconds)");
  Table table({"benchmark", "min(N,Nactive,E_CPU)", "min(N,E_CPU)",
               "min(N,Nactive)"});
  for (const auto& w : workloads::dacapo_suite()) {
    auto run_formula = [&](bool with_n_active, bool with_e_cpu) {
      jvm::JvmFlags flags;
      flags.kind = with_e_cpu ? jvm::JvmKind::kAdaptive : jvm::JvmKind::kVanilla8;
      flags.dynamic_gc_threads = with_n_active;
      flags.xmx = paper_xmx(w);
      return run_colocated(w, flags, 5,
                           [&](int, container::ContainerConfig& config) {
                             config.enable_resource_view = with_e_cpu;
                           })
          .mean_exec_s;
    };
    const double full = run_formula(true, true);
    const double no_active = run_formula(false, true);
    const double no_ecpu = run_formula(true, false);
    table.add_row({w.name, strf("%.2f", full), strf("%.2f", no_active),
                   strf("%.2f", no_ecpu)});
  }
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf(
      "expected: dropping E_CPU hurts most (over-threading returns);\n"
      "dropping N_active hurts small heaps (workers without enough work).\n");
}

// --- E: update interval --------------------------------------------------------

void ablation_update_period() {
  print_header("Ablation E", "sys_namespace update interval "
                             "(Figure-8 scenario, sunflow exec seconds)");
  Table table({"interval", "exec(s)", "gc(s)"});
  auto run_period = [&](SimDuration period, const char* label) {
    const auto w = workloads::dacapo_suite()[3];
    harness::JvmScenario scenario(paper_host());
    scenario.host().monitor().set_fixed_update_period(period);
    for (int i = 0; i < 9; ++i) {
      scenario.add_cpu_hog({}, 4, (i + 1) * sec);
    }
    harness::JvmInstanceConfig config;
    config.container.name = "dacapo";
    config.flags.kind = jvm::JvmKind::kAdaptive;
    config.flags.dynamic_gc_threads = false;
    config.flags.xmx = paper_xmx(w);
    config.workload = w;
    const auto idx = scenario.add(config);
    scenario.run(7200 * sec);
    table.add_row({label,
                   strf("%.2f", static_cast<double>(
                                    scenario.jvm(idx).stats().exec_time()) /
                                    1e6),
                   strf("%.3f", static_cast<double>(
                                    scenario.jvm(idx).stats().gc_time()) /
                                    1e6)});
  };
  run_period(0, "scheduling period (paper)");
  run_period(5 * msec, "fixed 5 ms");
  run_period(100 * msec, "fixed 100 ms");
  run_period(1 * sec, "fixed 1 s");
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf(
      "expected: very slow timers miss freed CPUs (worse); very fast timers\n"
      "react to noise but cost little here — the scheduling period is a\n"
      "good default because it scales with load.\n");
}

}  // namespace

int main(int argc, char** argv) {
  ablation_view_modes();
  ablation_threshold_and_step();
  ablation_memory_growth();
  ablation_gc_formula();
  ablation_update_period();
  arv::bench::register_case("ablation/view_modes/adaptive", [] {
    const auto w = workloads::dacapo_suite()[0];
    run_colocated(w, {.kind = jvm::JvmKind::kAdaptive, .xmx = paper_xmx(w)}, 5,
                  [](int, container::ContainerConfig& config) {
                    config.cfs_quota_us = 1000000;
                  });
  });
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
