// Figure 7: DaCapo performance under a static CPU limit (JDK 9 detecting a
// 2-core cpuset) vs the adaptive resource view, as the number of colocated
// containers grows from 2 to 10.
//
//   (a)-(e): execution time per benchmark    (f)-(j): GC time per benchmark
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"

namespace {

using namespace arv;
using namespace arv::bench;

struct Point {
  double exec_s;
  double gc_s;
};

/// JVM 9 configuration: every container pinned to its own 2-core cpuset
/// ("we configured the CPU mask to access two cores in each container").
Point run_jdk9(const jvm::JavaWorkload& w, int containers) {
  jvm::JvmFlags flags{.kind = jvm::JvmKind::kJdk9, .xmx = paper_xmx(w)};
  const auto result = run_colocated(
      w, flags, containers, [](int i, container::ContainerConfig& config) {
        CpuSet mask;
        mask.set(2 * i);
        mask.set(2 * i + 1);
        config.cpuset = mask;
        config.enable_resource_view = false;
      });
  return {result.mean_exec_s, result.mean_gc_s};
}

/// Adaptive configuration: no affinity, equal shares, resource view on.
Point run_adaptive(const jvm::JavaWorkload& w, int containers) {
  jvm::JvmFlags flags{.kind = jvm::JvmKind::kAdaptive, .xmx = paper_xmx(w)};
  const auto result = run_colocated(w, flags, containers);
  return {result.mean_exec_s, result.mean_gc_s};
}

void print_fig7() {
  for (const auto& w : workloads::dacapo_suite()) {
    print_header("Figure 7 — " + w.name,
                 "execution / GC time vs number of containers");
    Table table({"containers", "JVM9 exec(s)", "Adaptive exec(s)",
                 "JVM9 gc(s)", "Adaptive gc(s)"});
    for (const int n : {2, 4, 6, 8, 10}) {
      const Point jdk9 = run_jdk9(w, n);
      const Point adaptive = run_adaptive(w, n);
      table.add_row({std::to_string(n), strf("%.2f", jdk9.exec_s),
                     strf("%.2f", adaptive.exec_s), strf("%.3f", jdk9.gc_s),
                     strf("%.3f", adaptive.gc_s)});
    }
    std::fputs(table.to_ascii().c_str(), stdout);
  }
  std::printf(
      "\npaper shape: adaptive beats JVM9 on total time everywhere (no 2-core\n"
      "pin; mutators soak slack CPU), the gap narrowing as containers grow;\n"
      "JVM9's isolated 2 cores can win on pure GC time at high container\n"
      "counts (the isolation-vs-elasticity trade-off of §5.2).\n");
}

}  // namespace

int main(int argc, char** argv) {
  print_fig7();
  arv::bench::register_case("fig7/sunflow/10containers/adaptive", [] {
    run_adaptive(workloads::dacapo_suite()[3], 10);
  });
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
