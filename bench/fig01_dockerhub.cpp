// Figure 1: analysis of the top-100 application images on DockerHub —
// how many are potentially affected by the container semantic gap,
// per implementation language.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"
#include "src/workloads/dockerhub.h"

namespace {

using namespace arv;
using namespace arv::workloads;

void print_figure1() {
  bench::print_header("Figure 1",
                      "top-100 DockerHub images affected by the semantic gap");
  Table table({"language", "affected", "unaffected", "total"});
  int affected_total = 0;
  int total = 0;
  for (const Language lang :
       {Language::kC, Language::kCpp, Language::kJava, Language::kGo,
        Language::kPython, Language::kPhp, Language::kRuby}) {
    const auto counts = count_by_language().at(lang);
    table.add_row({std::string(language_name(lang)),
                   std::to_string(counts.affected),
                   std::to_string(counts.unaffected),
                   std::to_string(counts.total())});
    affected_total += counts.affected;
    total += counts.total();
  }
  table.add_row({"ALL", std::to_string(affected_total),
                 std::to_string(total - affected_total), std::to_string(total)});
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf("paper: 62/100 affected; all java and php images affected\n");

  std::printf("\nExample probes found in affected images:\n");
  int shown = 0;
  for (const auto& image : dockerhub_top100()) {
    if (image.affected && shown < 6) {
      std::printf("  %-16s (%s): %s\n", std::string(image.name).c_str(),
                  std::string(language_name(image.language)).c_str(),
                  std::string(image.probe).c_str());
      ++shown;
    }
  }
}

void BM_DatasetAggregation(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(count_by_language());
    benchmark::DoNotOptimize(total_affected());
  }
}
BENCHMARK(BM_DatasetAggregation);

}  // namespace

int main(int argc, char** argv) {
  print_figure1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
