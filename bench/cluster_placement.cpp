// Cluster placement: declared-requests vs effective-capacity scheduling on
// an overcommitted fleet, plus the skewed-fleet rebalance scenario.
//
// The fleet is the paper's semantic gap at cluster scale: twelve
// single-threaded web replicas each *request* 2 CPUs ("to be safe") on a
// 4-host x 4-CPU fleet — requests sum to 24 CPUs against 16 of capacity,
// while the replicas' actual burn is ~1 CPU each. The "requests" strategy
// believes the requests, runs out of declared room after 8 replicas, and
// leaves a third of the fleet's serving capacity unscheduled; the
// "effective" strategy watches observed slack and places all twelve. Under
// a load the full replica set absorbs comfortably, the baseline saturates:
// lower throughput, blown-up p95.
//
// Results go to BENCH_cluster.json (override with ARV_CLUSTER_OUT).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/cluster/pod_workloads.h"
#include "src/util/stats.h"

namespace {

using namespace arv;
using namespace arv::bench;

constexpr int kHosts = 4;
constexpr int kHostCpus = 4;
constexpr int kReplicas = 12;
constexpr double kFleetRate = 2400;           // requests/sec, fleet-wide
constexpr SimDuration kRun = 30 * units::sec;

struct PlacementResult {
  std::string strategy;
  int placed = 0;
  int unschedulable = 0;
  double throughput = 0;  ///< completed requests/sec over the run
  double p95_ms = 0;
  std::uint64_t dropped = 0;     ///< router + replica queue drops
  std::uint64_t unroutable = 0;  ///< arrivals with no live replica
};

container::K8sResources replica_requests() {
  container::K8sResources r;
  r.request_millicpu = 2000;  // operator "safety margin": 2x the real burn
  r.request_memory = 1 * units::GiB;
  return r;
}

PlacementResult run_overcommitted(const std::string& strategy) {
  cluster::ClusterConfig config;
  config.seed = 42;
  harness::FleetScenario fleet(config);
  for (int i = 0; i < kHosts; ++i) {
    container::HostConfig host;
    host.cpus = kHostCpus;
    host.ram = 16 * units::GiB;
    fleet.add_host(host);
  }
  fleet.enable_router(kFleetRate);
  server::WebConfig web;
  web.sizing = server::Sizing::kFixed;
  web.fixed_workers = 1;  // single-threaded replica (its real capacity)
  web.service_cpu = 4 * units::msec;
  PlacementResult result;
  result.strategy = strategy;
  for (int i = 0; i < kReplicas; ++i) {
    if (fleet.place_web_pod(strategy, replica_requests(), web) >= 0) {
      ++result.placed;
    }
  }
  result.unschedulable = static_cast<int>(fleet.scheduler().unschedulable());
  fleet.run(kRun);

  const server::RequestStats stats = fleet.router()->aggregate();
  result.throughput = stats.throughput_per_sec(kRun);
  result.p95_ms = stats.p95_ms();
  result.unroutable = fleet.router()->unroutable();
  result.dropped = fleet.router()->dropped();
  for (int id = 0; id < fleet.cluster().pod_count(); ++id) {
    const cluster::Pod& pod = fleet.cluster().pod(id);
    if (pod.running() && pod.workload != nullptr) {
      if (const auto* sink = pod.workload->request_sink()) {
        result.dropped += sink->dropped();
      }
    }
  }
  return result;
}

struct RebalanceResult {
  std::uint64_t migrations = 0;
  int pods_h0 = 0;
  int pods_h1 = 0;
  std::int64_t final_slack_h0 = 0;  ///< milli-CPUs of observed idle
  std::int64_t final_slack_h1 = 0;
};

RebalanceResult run_skewed_rebalance() {
  // Everything lands on host 0 (tiny declared requests keep it "emptiest"
  // for MostAllocated is wrong — they keep it *fullest*), host 1 idles; the
  // rebalancer must spread the hogs without thrashing.
  harness::FleetScenario fleet;
  for (int i = 0; i < 2; ++i) {
    container::HostConfig host;
    host.cpus = kHostCpus;
    host.ram = 16 * units::GiB;
    fleet.add_host(host);
  }
  fleet.enable_rebalancer();
  container::K8sResources tiny;
  tiny.request_millicpu = 100;
  tiny.request_memory = 256 * units::MiB;
  for (int i = 0; i < 3; ++i) {
    // "requests" packs every hog onto the same (fullest) host.
    fleet.place_pod("requests", tiny,
                    cluster::cpu_hog_workload(kHostCpus, 10000 * units::sec));
  }
  fleet.run(kRun);
  RebalanceResult result;
  result.migrations = fleet.rebalancer()->migrations();
  result.pods_h0 = fleet.cluster().pods_on(0);
  result.pods_h1 = fleet.cluster().pods_on(1);
  result.final_slack_h0 = fleet.cluster().host_view(0).slack_millicpu;
  result.final_slack_h1 = fleet.cluster().host_view(1).slack_millicpu;
  return result;
}

void write_json(const std::vector<PlacementResult>& placement,
                const RebalanceResult& rebalance) {
  const char* env = std::getenv("ARV_CLUSTER_OUT");
  const std::string path =
      (env != nullptr && env[0] != '\0') ? env : "BENCH_cluster.json";
  std::ofstream out(path);
  out << "{\n  \"bench\": \"cluster_placement\",\n"
      << strf("  \"fleet\": {\"hosts\": %d, \"cpus_per_host\": %d, "
              "\"replicas\": %d, \"rate_per_sec\": %.0f},\n",
              kHosts, kHostCpus, kReplicas, kFleetRate)
      << "  \"strategies\": [\n";
  for (std::size_t i = 0; i < placement.size(); ++i) {
    const PlacementResult& r = placement[i];
    out << strf(
        "    {\"strategy\": \"%s\", \"placed\": %d, \"unschedulable\": %d,\n"
        "     \"throughput_per_sec\": %.1f, \"p95_ms\": %.2f, "
        "\"dropped\": %llu, \"unroutable\": %llu}%s\n",
        r.strategy.c_str(), r.placed, r.unschedulable, r.throughput, r.p95_ms,
        static_cast<unsigned long long>(r.dropped),
        static_cast<unsigned long long>(r.unroutable),
        i + 1 < placement.size() ? "," : "");
  }
  out << strf(
      "  ],\n  \"rebalance\": {\"migrations\": %llu, \"pods_h0\": %d, "
      "\"pods_h1\": %d, \"final_slack_h0_millicpu\": %lld, "
      "\"final_slack_h1_millicpu\": %lld}\n}\n",
      static_cast<unsigned long long>(rebalance.migrations),
      rebalance.pods_h0, rebalance.pods_h1,
      static_cast<long long>(rebalance.final_slack_h0),
      static_cast<long long>(rebalance.final_slack_h1));
  if (!out) {
    std::fprintf(stderr, "cluster_placement: failed to write %s\n",
                 path.c_str());
  } else {
    std::printf("wrote %s\n", path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  print_header("Cluster placement: requests vs effective",
               strf("%d web replicas requesting 2 CPUs each on a %dx%d-CPU "
                    "fleet, %.0f req/s",
                    kReplicas, kHosts, kHostCpus, kFleetRate));
  std::vector<PlacementResult> placement;
  for (const std::string strategy : {"requests", "effective"}) {
    placement.push_back(run_overcommitted(strategy));
  }
  {
    Table table({"strategy", "placed", "unsched", "throughput/s", "p95(ms)",
                 "dropped", "unroutable"});
    for (const PlacementResult& r : placement) {
      table.add_row({r.strategy, std::to_string(r.placed),
                     std::to_string(r.unschedulable),
                     strf("%.1f", r.throughput), strf("%.2f", r.p95_ms),
                     std::to_string(r.dropped), std::to_string(r.unroutable)});
    }
    std::fputs(table.to_ascii().c_str(), stdout);
  }
  std::printf(
      "expected: \"effective\" places all %d replicas and beats \"requests\" "
      "on throughput and p95.\n",
      kReplicas);

  print_header("Cluster rebalance: skewed fleet",
               "3 four-thread hogs packed on host 0 of 2; rebalancer spreads "
               "them without thrashing");
  const RebalanceResult rebalance = run_skewed_rebalance();
  {
    Table table({"migrations", "pods h0", "pods h1", "slack h0 (mcpu)",
                 "slack h1 (mcpu)"});
    table.add_row({std::to_string(rebalance.migrations),
                   std::to_string(rebalance.pods_h0),
                   std::to_string(rebalance.pods_h1),
                   std::to_string(rebalance.final_slack_h0),
                   std::to_string(rebalance.final_slack_h1)});
    std::fputs(table.to_ascii().c_str(), stdout);
  }

  write_json(placement, rebalance);
  for (const std::string strategy : {"requests", "effective"}) {
    arv::bench::register_case("cluster_placement/" + strategy,
                              [strategy] { run_overcommitted(strategy); });
  }
  arv::bench::register_case("cluster_placement/rebalance",
                            [] { run_skewed_rebalance(); });
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
