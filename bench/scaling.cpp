// Container-scaling benchmark (the control-plane counterpart of Figure 7).
//
// Figure 7 asks how the *applications* behave as containers multiply; this
// bench asks what the simulated kernel's control plane costs as the host
// ramps to production container counts (C-Balancer's regime, PAPERS.md). For
// N in {64, 256, 1024} it measures:
//
//   * the immediate (wall-clock) cost of creating the 1st vs the Nth
//     container — creation must be O(1), not "re-derive every peer's bounds
//     on every cgroup event";
//   * wall-clock per simulated second across a ramp + steady-state phase in
//     which cpu.shares churn and container processes read /proc/cpuinfo —
//     the event-coalescing, total_shares-caching, and vfs render-cache hot
//     paths.
//
// Results are written to BENCH_scaling.json (override the path with
// ARV_SCALING_OUT). The baseline_* fields are the same measurements taken on
// this machine immediately before the event-coalescing work landed, so the
// JSON records the before/after pair the scaling acceptance criteria ask for.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <vector>

#include "bench/common.h"
#include "src/container/container.h"
#include "src/workloads/hogs.h"

namespace {

using namespace arv;
using namespace arv::bench;

/// Pre-PR reference (RelWithDebInfo, this container image): wall-clock per
/// simulated second with the per-event O(N) refresh and uncached
/// total_shares()/cpuinfo renders. Re-measure with `git stash` if the
/// hardware changes; the improvement factor below is relative to these.
struct Baseline {
  int containers;
  double wall_ms_per_sim_s;
  double create_last_us;
};
constexpr Baseline kPrePrBaseline[] = {
    {64, 3.07, 49.6},
    {256, 18.84, 550.3},
    {1024, 602.57, 6499.7},
};

double wall_ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

struct ScalingPoint {
  int containers = 0;
  double create_first_us = 0;  ///< wall cost of creating container #1
  double create_last_us = 0;   ///< wall cost of creating container #N
  double ramp_wall_ms = 0;     ///< ramp phase (one creation per sim ms)
  double steady_wall_ms = 0;   ///< 3 sim-s of share churn + cpuinfo reads
  double sim_s = 0;
  double wall_ms_per_sim_s = 0;
  double baseline_wall_ms_per_sim_s = 0;
  double baseline_create_last_us = 0;
};

ScalingPoint run_scaling(int n) {
  ScalingPoint point;
  point.containers = n;

  container::HostConfig host_config;
  host_config.cpus = 20;
  host_config.ram = 128 * GiB;
  container::Host host(host_config);
  container::ContainerRuntime runtime(host);

  // --- ramp: one container per simulated millisecond -----------------------
  const auto ramp_start = std::chrono::steady_clock::now();
  std::vector<container::Container*> containers;
  containers.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto create_start = std::chrono::steady_clock::now();
    containers.push_back(&runtime.run({}));
    const double create_us = wall_ms_since(create_start) * 1000.0;
    if (i == 0) {
      point.create_first_us = create_us;
    }
    if (i == n - 1) {
      point.create_last_us = create_us;
    }
    host.run_for(1 * msec);
  }
  point.ramp_wall_ms = wall_ms_since(ramp_start);

  // --- steady state: a few busy containers, cpu.shares churn, sysfs reads --
  std::vector<std::unique_ptr<workloads::CpuHog>> hogs;
  for (int i = 0; i < 8 && i < n; ++i) {
    hogs.push_back(std::make_unique<workloads::CpuHog>(host, *containers[i], 4,
                                                       10'000 * sec));
  }
  const SimDuration steady = 3 * sec;
  int churn_index = 0;
  std::function<void()> churn = [&] {
    // docker-update analogue: bump a rotating container's weight. Each write
    // fires kCpuChanged — the per-event hot path this bench exists to bound.
    container::Container* target =
        containers[static_cast<std::size_t>(churn_index) % containers.size()];
    target->update_cpu_shares(churn_index % 2 == 0 ? 512 : 1024);
    // A container process probing its view — the vfs render hot path.
    host.sysfs().read(target->init_pid(), "/proc/cpuinfo");
    ++churn_index;
    host.engine().schedule_after(50 * msec, churn);
  };
  host.engine().schedule_after(50 * msec, churn);

  const auto steady_start = std::chrono::steady_clock::now();
  host.run_for(steady);
  point.steady_wall_ms = wall_ms_since(steady_start);

  point.sim_s = static_cast<double>(n * msec + steady) / 1e6;
  point.wall_ms_per_sim_s =
      (point.ramp_wall_ms + point.steady_wall_ms) / point.sim_s;
  for (const Baseline& base : kPrePrBaseline) {
    if (base.containers == n) {
      point.baseline_wall_ms_per_sim_s = base.wall_ms_per_sim_s;
      point.baseline_create_last_us = base.create_last_us;
    }
  }
  return point;
}

void write_json(const std::vector<ScalingPoint>& points) {
  const char* env = std::getenv("ARV_SCALING_OUT");
  const std::string path =
      (env != nullptr && env[0] != '\0') ? env : "BENCH_scaling.json";
  std::ofstream out(path);
  out << "{\n  \"bench\": \"container_scaling\",\n  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const ScalingPoint& p = points[i];
    const double improvement =
        p.baseline_wall_ms_per_sim_s > 0
            ? p.baseline_wall_ms_per_sim_s / p.wall_ms_per_sim_s
            : 0.0;
    out << strf(
        "    {\"containers\": %d, \"create_first_us\": %.1f, "
        "\"create_last_us\": %.1f, \"ramp_wall_ms\": %.2f, "
        "\"steady_wall_ms\": %.2f, \"sim_s\": %.3f, "
        "\"wall_ms_per_sim_s\": %.2f, \"baseline_wall_ms_per_sim_s\": %.2f, "
        "\"baseline_create_last_us\": %.1f, \"improvement_x\": %.2f}%s\n",
        p.containers, p.create_first_us, p.create_last_us, p.ramp_wall_ms,
        p.steady_wall_ms, p.sim_s, p.wall_ms_per_sim_s,
        p.baseline_wall_ms_per_sim_s, p.baseline_create_last_us, improvement,
        i + 1 < points.size() ? "," : "");
  }
  out << "  ]\n}\n";
  if (!out) {
    std::fprintf(stderr, "scaling: cannot write %s\n", path.c_str());
    return;
  }
  std::printf("\nscaling: wrote %s\n", path.c_str());
}

void print_scaling() {
  print_header("Container scaling — control-plane cost",
               "per-creation work and wall-clock per simulated second");
  Table table({"containers", "create #1 (us)", "create #N (us)",
               "wall ms/sim s", "baseline ms/sim s", "improvement"});
  std::vector<ScalingPoint> points;
  for (const int n : {64, 256, 1024}) {
    const ScalingPoint p = run_scaling(n);
    points.push_back(p);
    const double improvement = p.baseline_wall_ms_per_sim_s > 0
                                   ? p.baseline_wall_ms_per_sim_s /
                                         p.wall_ms_per_sim_s
                                   : 0.0;
    table.add_row({std::to_string(n), strf("%.1f", p.create_first_us),
                   strf("%.1f", p.create_last_us),
                   strf("%.2f", p.wall_ms_per_sim_s),
                   strf("%.2f", p.baseline_wall_ms_per_sim_s),
                   improvement > 0 ? strf("%.1fx", improvement) : "n/a"});
  }
  std::fputs(table.to_ascii().c_str(), stdout);
  write_json(points);
}

}  // namespace

int main(int argc, char** argv) {
  print_scaling();
  arv::bench::register_case("scaling/256containers", [] { run_scaling(256); });
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
