// Closed-loop autoscaling: throttle-free (burstable) vs quota-capped CPU
// under a diurnal curve with a flash crowd.
//
// One fleet (6 hosts, 2 parked for the cluster autoscaler), all three
// control loops on: the HPA scales the web service from router-observed
// demand vs per-replica *effective* capacity, the VPA rewrites cgroup
// limits live from usage percentiles, and the CA grows/shrinks the active
// fleet on slack hysteresis. The request rate replays a deterministic
// diurnal ramp with a flash crowd at the peak.
//
// Two runs differ only in the replica template's CpuMode:
//   quota_capped  - kubelet default: cfs_quota from the declared CPU limit;
//                   bursts throttle at the quota whatever the host has idle.
//   burstable     - shares only, no quota (the "CPU-Limits kill Performance"
//                   configuration): bursts ride the host's actual slack.
//
// Expected: burstable clearly beats quota-capped on p95/p99 latency under
// the flash crowd. The flip side shows too: bursting replicas absorb the
// diurnal ramp without scaling (their effective capacity really is higher),
// so the flash lands on fewer replicas and more requests shed at the front
// door while the surge catches up. The HPA replica series tracks the
// diurnal curve up *and* back down in both modes; the CA brings parked
// hosts in at the peak and drains them in the trough.
//
// Results go to BENCH_autoscale.json (override with ARV_AUTOSCALE_OUT).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/cluster/autoscale.h"
#include "src/cluster/pod_workloads.h"
#include "src/cluster/router.h"
#include "src/harness/scenario.h"
#include "src/util/stats.h"

namespace {

using namespace arv;
using namespace arv::bench;

constexpr int kHosts = 6;        // 4 active at t=0, 2 parked for the CA
constexpr int kParked = 2;
constexpr SimDuration kChunk = 250 * units::msec;  // rate-replay resolution
constexpr SimDuration kRun = 30 * units::sec;

/// The deterministic load shape, in requests/sec at simulated time `t`:
/// a diurnal ramp 200 -> 1800 over 10 s, a 3500/s flash crowd for 3 s at
/// the peak, the ramp back down by 20 s, then a 10 s trough (the window
/// where scale-down and host draining must happen).
double load_rate(SimTime t) {
  const double s = static_cast<double>(t) / static_cast<double>(units::sec);
  if (s < 10.0) {
    return 200.0 + 160.0 * s;
  }
  if (s < 13.0) {
    return 3500.0;  // flash crowd
  }
  if (s < 20.0) {
    return 1800.0 - (1800.0 - 200.0) * (s - 13.0) / 7.0;
  }
  return 200.0;
}

struct AutoscaleResult {
  std::string name;
  std::uint64_t generated = 0;
  double availability_pct = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  std::uint64_t shed = 0;
  std::uint64_t dropped = 0;
  int replicas_start = 0;
  int replicas_peak = 0;
  int replicas_final = 0;
  int hosts_peak = 0;
  int hosts_final = 0;
  std::uint64_t scale_ups = 0;
  std::uint64_t scale_downs = 0;
  std::uint64_t vpa_rewrites = 0;
  std::uint64_t hosts_added = 0;
  std::uint64_t hosts_drained = 0;
  std::vector<int> replica_series;  // one sample per chunk
  std::vector<int> host_series;
};

container::K8sResources res(std::int64_t millicpu, Bytes memory) {
  container::K8sResources r;
  r.request_millicpu = millicpu;
  r.request_memory = memory;
  return r;
}

AutoscaleResult run_mode(const std::string& name, cluster::CpuMode mode) {
  cluster::ClusterConfig config;
  config.seed = 42;
  harness::FleetScenario fleet(config);
  for (int i = 0; i < kHosts; ++i) {
    container::HostConfig host;
    host.cpus = 4;
    host.ram = 8 * units::GiB;
    fleet.add_host(host);
  }
  for (int i = kHosts - kParked; i < kHosts; ++i) {
    fleet.cluster().cordon_host(i, true);
  }

  cluster::RouterConfig router;
  router.arrivals_per_sec = load_rate(0);
  router.max_retries = 2;
  router.breaker_threshold = 5;
  router.breaker_open = 300 * units::msec;
  fleet.enable_router(router);

  server::WebConfig web;
  web.service_cpu = 4 * units::msec;
  web.max_queue = 200;

  // The declared CPU limit is deliberately tight (1500m against ~4-core
  // hosts): in quota-capped mode it becomes a 150 ms / 100 ms cfs quota
  // that throttles every burst, in burstable mode it is ignored.
  cluster::PodSpec replica;
  replica.name = "web";
  replica.resources = res(1000, 512 * units::MiB);
  replica.resources.limit_millicpu = 1500;
  replica.cpu_mode = mode;

  cluster::HpaConfig hpa;
  hpa.period = 250 * units::msec;
  hpa.min_replicas = 2;
  hpa.max_replicas = 12;
  hpa.request_cpu = web.service_cpu;
  hpa.max_surge = 6;
  hpa.up_stabilization = 250 * units::msec;
  hpa.down_stabilization = 2 * units::sec;
  fleet.enable_hpa(replica, web, hpa);
  for (int h = 0; h < hpa.min_replicas; ++h) {
    cluster::PodSpec seed = replica;
    seed.name = "web-seed-" + std::to_string(h);
    const int pod =
        fleet.cluster().create_pod(h, seed, cluster::web_replica(web));
    fleet.router()->add_replica(pod);
    fleet.hpa()->adopt(pod);
  }

  cluster::VpaConfig vpa;
  vpa.period = 100 * units::msec;
  vpa.window_rounds = 20;
  vpa.recommend_every = 5;
  fleet.enable_vpa(vpa);

  cluster::CaConfig ca;
  ca.period = 500 * units::msec;
  ca.min_hosts = 2;
  ca.band_rounds = 3;
  ca.cooldown = 2 * units::sec;
  fleet.enable_cluster_autoscaler(ca);

  AutoscaleResult result;
  result.name = name;
  result.replicas_start = fleet.hpa()->replicas();
  while (fleet.cluster().now() < kRun) {
    fleet.router()->set_rate(load_rate(fleet.cluster().now()));
    fleet.run(kChunk);
    const int replicas = fleet.hpa()->replicas();
    const int hosts = fleet.cluster().active_hosts();
    result.replica_series.push_back(replicas);
    result.host_series.push_back(hosts);
    result.replicas_peak = std::max(result.replicas_peak, replicas);
    result.hosts_peak = std::max(result.hosts_peak, hosts);
  }
  result.replicas_final = fleet.hpa()->replicas();
  result.hosts_final = fleet.cluster().active_hosts();

  const cluster::RequestRouter& r = *fleet.router();
  result.generated = r.generated();
  result.availability_pct =
      result.generated == 0
          ? 100.0
          : 100.0 * static_cast<double>(r.routed()) /
                static_cast<double>(result.generated);
  const server::RequestStats agg = r.aggregate();
  result.p50_ms = agg.percentile_ms(50.0);
  result.p95_ms = agg.percentile_ms(95.0);
  result.p99_ms = agg.percentile_ms(99.0);
  result.shed = r.shed();
  result.dropped = r.dropped();
  result.scale_ups = fleet.hpa()->scale_ups();
  result.scale_downs = fleet.hpa()->scale_downs();
  result.vpa_rewrites = fleet.vpa()->rewrites();
  result.hosts_added = fleet.cluster_autoscaler()->hosts_added();
  result.hosts_drained = fleet.cluster_autoscaler()->hosts_drained();
  return result;
}

std::string series_json(const std::vector<int>& series) {
  std::string out = "[";
  for (std::size_t i = 0; i < series.size(); ++i) {
    out += (i == 0 ? "" : ",") + std::to_string(series[i]);
  }
  return out + "]";
}

void write_json(const std::vector<AutoscaleResult>& results) {
  const char* env = std::getenv("ARV_AUTOSCALE_OUT");
  const std::string path =
      (env != nullptr && env[0] != '\0') ? env : "BENCH_autoscale.json";
  std::ofstream out(path);
  out << "{\n  \"bench\": \"autoscale\",\n"
      << strf("  \"fleet\": {\"hosts\": %d, \"parked\": %d, \"run_s\": %lld, "
              "\"chunk_ms\": %lld, \"flash_rate_per_sec\": 3500},\n",
              kHosts, kParked, static_cast<long long>(kRun / units::sec),
              static_cast<long long>(kChunk / units::msec))
      << "  \"runs\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const AutoscaleResult& r = results[i];
    out << strf(
        "    {\"name\": \"%s\", \"generated\": %llu, "
        "\"availability_pct\": %.3f,\n"
        "     \"p50_ms\": %.2f, \"p95_ms\": %.2f, \"p99_ms\": %.2f, "
        "\"shed\": %llu, \"dropped\": %llu,\n"
        "     \"replicas\": {\"start\": %d, \"peak\": %d, \"final\": %d}, "
        "\"hosts\": {\"peak\": %d, \"final\": %d},\n"
        "     \"scale_ups\": %llu, \"scale_downs\": %llu, "
        "\"vpa_rewrites\": %llu, \"hosts_added\": %llu, "
        "\"hosts_drained\": %llu,\n"
        "     \"replica_series\": %s,\n"
        "     \"host_series\": %s}%s\n",
        r.name.c_str(), static_cast<unsigned long long>(r.generated),
        r.availability_pct, r.p50_ms, r.p95_ms, r.p99_ms,
        static_cast<unsigned long long>(r.shed),
        static_cast<unsigned long long>(r.dropped), r.replicas_start,
        r.replicas_peak, r.replicas_final, r.hosts_peak, r.hosts_final,
        static_cast<unsigned long long>(r.scale_ups),
        static_cast<unsigned long long>(r.scale_downs),
        static_cast<unsigned long long>(r.vpa_rewrites),
        static_cast<unsigned long long>(r.hosts_added),
        static_cast<unsigned long long>(r.hosts_drained),
        series_json(r.replica_series).c_str(),
        series_json(r.host_series).c_str(),
        i + 1 < results.size() ? "," : "");
  }
  out << "  ]\n}\n";
  if (!out) {
    std::fprintf(stderr, "autoscale: failed to write %s\n", path.c_str());
  } else {
    std::printf("wrote %s\n", path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  print_header(
      "Closed-loop autoscaling: throttle-free vs quota-capped CPU",
      strf("%d hosts (%d parked), diurnal 200->1800/s with a 3500/s flash "
           "crowd; HPA + VPA + cluster autoscaler on effective views",
           kHosts, kParked));
  std::vector<AutoscaleResult> results;
  results.push_back(run_mode("quota_capped", cluster::CpuMode::kQuotaCapped));
  results.push_back(run_mode("burstable", cluster::CpuMode::kBurstable));
  {
    Table table({"mode", "avail(%)", "p50(ms)", "p95(ms)", "p99(ms)",
                 "replicas(start/peak/final)", "hosts(peak/final)", "ups",
                 "downs", "vpa", "added", "drained"});
    for (const AutoscaleResult& r : results) {
      table.add_row(
          {r.name, strf("%.3f", r.availability_pct), strf("%.2f", r.p50_ms),
           strf("%.2f", r.p95_ms), strf("%.2f", r.p99_ms),
           strf("%d/%d/%d", r.replicas_start, r.replicas_peak,
                r.replicas_final),
           strf("%d/%d", r.hosts_peak, r.hosts_final),
           std::to_string(r.scale_ups), std::to_string(r.scale_downs),
           std::to_string(r.vpa_rewrites), std::to_string(r.hosts_added),
           std::to_string(r.hosts_drained)});
    }
    std::fputs(table.to_ascii().c_str(), stdout);
  }
  std::printf(
      "expected: burstable beats quota_capped on p95/p99 under the flash "
      "crowd (trading some front-door shed while the surge catches up); "
      "replicas track the diurnal curve up and back down; parked hosts "
      "join at the peak and drain in the trough.\n");

  write_json(results);
  arv::bench::register_case("autoscale/quota_capped", [] {
    run_mode("quota_capped", cluster::CpuMode::kQuotaCapped);
  });
  arv::bench::register_case("autoscale/burstable", [] {
    run_mode("burstable", cluster::CpuMode::kBurstable);
  });
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
