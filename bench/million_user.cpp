// Million-user day: trace-driven open-loop workload against the full
// closed-loop fleet, "paper" adaptive views vs "static" views.
//
// A compressed day (60 s of simulated time, 100 ms slots) replays a diurnal
// demand curve with an evening flash crowd through the OpenLoopDriver:
// two tenants (api 3:1 batch), Poisson arrivals, bounded-Pareto request
// costs, >= 1M requests injected per day. All three control loops run (HPA
// on the api tenant, VPA, cluster autoscaler), and the SloAccountant keeps
// per-tenant availability / p99 / error-budget books against declared SLOs.
//
// The two runs differ only in PodSpec::view_policy — every replica sees
// either the paper's adaptive resource view or the static host-sized view.
// Expected: the paper view attains the availability SLO with budget to
// spare where the static view burns through it during the flash crowd.
//
// Also measured: driver overhead — wall-clock spent compiling + injecting
// the schedule as a fraction of total step time. The acceptance bar is
// < 10%; the injection fast path is a pooled batch per tick.
//
// Results go to BENCH_workload.json (override with ARV_WORKLOAD_OUT).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/cluster/autoscale.h"
#include "src/cluster/pod_workloads.h"
#include "src/cluster/router.h"
#include "src/harness/scenario.h"
#include "src/load/driver.h"
#include "src/load/slo.h"
#include "src/load/trace_spec.h"

namespace {

using namespace arv;
using namespace arv::bench;

constexpr int kHosts = 10;  // 8 active at t=0, 2 parked for the CA
constexpr int kParked = 2;
constexpr SimDuration kDay = 60 * units::sec;  // one compressed "day"

load::TraceSpec day_spec() {
  load::TraceSpec spec;
  spec.duration = kDay;
  spec.slot = 100 * units::msec;
  spec.mean_rps = 18000;  // >= 1M arrivals over the day
  spec.diurnal_amplitude = 0.6;
  spec.diurnal_periods = 1;
  load::FlashCrowd crowd;  // spike on the diurnal downslope, mid-afternoon
  crowd.start = 30 * units::sec;
  crowd.ramp = 2 * units::sec;
  crowd.hold = 4 * units::sec;
  crowd.decay = 2 * units::sec;
  crowd.magnitude = 2.0;
  spec.flash_crowds.push_back(crowd);
  spec.process = load::ArrivalProcess::kPoisson;
  spec.seed = 20190624;  // HPDC'19
  spec.tenants.push_back({"api", 3.0, 200 * units::usec, 4 * units::msec, 1.3});
  spec.tenants.push_back({"batch", 0.5, 1 * units::msec, 8 * units::msec, 1.2});
  return spec;
}

struct TenantOutcome {
  std::string tenant;
  std::uint64_t injected = 0;
  std::int64_t availability_permille = 0;
  std::int64_t p99_us = 0;
  std::int64_t budget_remaining_permille = 0;
  std::int64_t burn_rate_permille = 0;
  bool attaining = false;
};

struct WorkloadResult {
  std::string name;  // view policy
  std::uint64_t injected = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  std::uint64_t dropped = 0;
  int replicas_peak = 0;
  int hosts_peak = 0;
  double total_wall_ms = 0;
  double driver_wall_ms = 0;
  double driver_overhead_pct = 0;
  std::vector<TenantOutcome> tenants;
};

container::K8sResources res(std::int64_t millicpu, Bytes memory) {
  container::K8sResources r;
  r.request_millicpu = millicpu;
  r.request_memory = memory;
  return r;
}

WorkloadResult run_policy(const std::string& policy) {
  cluster::ClusterConfig config;
  config.seed = 42;
  harness::FleetScenario fleet(config);
  for (int i = 0; i < kHosts; ++i) {
    container::HostConfig host;
    host.cpus = 4;
    host.ram = 8 * units::GiB;
    fleet.add_host(host);
  }
  for (int i = kHosts - kParked; i < kHosts; ++i) {
    fleet.cluster().cordon_host(i, true);
  }

  fleet.add_tenant("api");
  fleet.add_tenant("batch");

  server::WebConfig web;
  web.service_cpu = 1 * units::msec;
  web.max_queue = 400;
  // `worker_processes auto;` re-probed every 500 ms: the pool tracks whatever
  // CPU count the pod's resource view exposes — this is where "paper" and
  // "static" views diverge (right-sized pool vs host-sized over-threading).
  web.resize_interval = 500 * units::msec;

  cluster::PodSpec replica;
  replica.resources = res(1000, 512 * units::MiB);
  replica.resources.limit_millicpu = 1500;
  replica.view_policy = policy;

  std::vector<int> api_seeds;
  std::vector<int> batch_seeds;
  for (int i = 0; i < 6; ++i) {
    const int pod = fleet.place_tenant_web_pod("api", replica.resources, web,
                                               replica);
    if (pod >= 0) {
      api_seeds.push_back(pod);
    }
  }
  for (int i = 0; i < 4; ++i) {
    const int pod = fleet.place_tenant_web_pod("batch", replica.resources, web,
                                               replica);
    if (pod >= 0) {
      batch_seeds.push_back(pod);
    }
  }

  fleet.use_trace(load::compile(day_spec()));
  load::SloTarget api_slo;
  api_slo.availability_permille = 999;
  api_slo.p99_target = 250 * units::msec;
  load::SloTarget batch_slo;
  batch_slo.availability_permille = 990;
  batch_slo.p99_target = 1 * units::sec;
  fleet.declare_slo("api", api_slo);
  fleet.declare_slo("batch", batch_slo);

  cluster::HpaConfig hpa;
  hpa.period = 500 * units::msec;
  hpa.min_replicas = 6;
  hpa.max_replicas = 24;
  hpa.request_cpu = web.service_cpu;
  hpa.max_surge = 6;
  hpa.down_stabilization = 4 * units::sec;
  cluster::PodSpec api_template = replica;
  api_template.name = "api";
  fleet.enable_tenant_hpa("api", api_template, web, hpa);
  for (const int pod : api_seeds) {
    fleet.tenant_hpa("api")->adopt(pod);
  }
  cluster::HpaConfig batch_hpa = hpa;
  batch_hpa.min_replicas = 4;
  batch_hpa.max_replicas = 12;
  batch_hpa.request_cpu = 2 * units::msec;  // batch requests cost ~2x api's
  cluster::PodSpec batch_template = replica;
  batch_template.name = "batch";
  fleet.enable_tenant_hpa("batch", batch_template, web, batch_hpa);
  for (const int pod : batch_seeds) {
    fleet.tenant_hpa("batch")->adopt(pod);
  }

  cluster::VpaConfig vpa;
  vpa.period = 500 * units::msec;
  fleet.enable_vpa(vpa);
  cluster::CaConfig ca;
  ca.period = 1 * units::sec;
  ca.min_hosts = kHosts - kParked;
  ca.cooldown = 4 * units::sec;
  fleet.enable_cluster_autoscaler(ca);

  WorkloadResult result;
  result.name = policy;
  const auto wall_start = std::chrono::steady_clock::now();
  constexpr SimDuration kChunk = 1 * units::sec;
  while (fleet.cluster().now() < kDay) {
    fleet.run(kChunk);
    result.replicas_peak =
        std::max(result.replicas_peak, fleet.tenant_hpa("api")->replicas());
    result.hosts_peak =
        std::max(result.hosts_peak, fleet.cluster().active_hosts());
  }
  const auto wall_end = std::chrono::steady_clock::now();
  result.total_wall_ms =
      std::chrono::duration<double, std::milli>(wall_end - wall_start).count();
  result.driver_wall_ms =
      static_cast<double>(fleet.driver()->wall_us()) / 1000.0;
  result.driver_overhead_pct =
      result.total_wall_ms <= 0.0
          ? 0.0
          : 100.0 * result.driver_wall_ms / result.total_wall_ms;
  result.injected = fleet.driver()->injected();
  for (const std::string tenant : {"api", "batch"}) {
    const cluster::RequestRouter& r = *fleet.tenant_router(tenant);
    result.completed += r.aggregate().completed;
    result.shed += r.shed();
    result.dropped += r.dropped();
    TenantOutcome outcome;
    outcome.tenant = tenant;
    outcome.injected = fleet.driver()->injected(tenant);
    outcome.availability_permille = fleet.slo()->availability_permille(tenant);
    outcome.p99_us = fleet.slo()->p99_us(tenant);
    outcome.budget_remaining_permille =
        fleet.slo()->budget_remaining_permille(tenant);
    outcome.burn_rate_permille = fleet.slo()->burn_rate_permille(tenant);
    outcome.attaining = fleet.slo()->attaining(tenant);
    result.tenants.push_back(outcome);
  }
  return result;
}

void write_json(const std::vector<WorkloadResult>& results) {
  const char* env = std::getenv("ARV_WORKLOAD_OUT");
  const std::string path =
      (env != nullptr && env[0] != '\0') ? env : "BENCH_workload.json";
  std::ofstream out(path);
  out << "{\n  \"bench\": \"million_user\",\n"
      << strf("  \"fleet\": {\"hosts\": %d, \"parked\": %d, \"day_s\": %lld, "
              "\"mean_rps\": 18000},\n",
              kHosts, kParked, static_cast<long long>(kDay / units::sec))
      << "  \"runs\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const WorkloadResult& r = results[i];
    out << strf(
        "    {\"view_policy\": \"%s\", \"injected\": %llu, "
        "\"completed\": %llu, \"shed\": %llu, \"dropped\": %llu,\n"
        "     \"replicas_peak\": %d, \"hosts_peak\": %d,\n"
        "     \"total_wall_ms\": %.1f, \"driver_wall_ms\": %.1f, "
        "\"driver_overhead_pct\": %.2f,\n"
        "     \"tenants\": [\n",
        r.name.c_str(), static_cast<unsigned long long>(r.injected),
        static_cast<unsigned long long>(r.completed),
        static_cast<unsigned long long>(r.shed),
        static_cast<unsigned long long>(r.dropped), r.replicas_peak,
        r.hosts_peak, r.total_wall_ms, r.driver_wall_ms,
        r.driver_overhead_pct);
    for (std::size_t t = 0; t < r.tenants.size(); ++t) {
      const TenantOutcome& o = r.tenants[t];
      out << strf(
          "      {\"tenant\": \"%s\", \"injected\": %llu, "
          "\"availability_permille\": %lld, \"p99_us\": %lld, "
          "\"budget_remaining_permille\": %lld, "
          "\"burn_rate_permille\": %lld, \"attaining\": %s}%s\n",
          o.tenant.c_str(), static_cast<unsigned long long>(o.injected),
          static_cast<long long>(o.availability_permille),
          static_cast<long long>(o.p99_us),
          static_cast<long long>(o.budget_remaining_permille),
          static_cast<long long>(o.burn_rate_permille),
          o.attaining ? "true" : "false",
          t + 1 < r.tenants.size() ? "," : "");
    }
    out << strf("     ]}%s\n", i + 1 < results.size() ? "," : "");
  }
  out << "  ]\n}\n";
  if (!out) {
    std::fprintf(stderr, "million_user: failed to write %s\n", path.c_str());
  } else {
    std::printf("wrote %s\n", path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  print_header(
      "Million-user day: open-loop trace replay, paper vs static views",
      strf("%d hosts (%d parked), diurnal + flash crowd, 2 tenants, "
           ">=1M requests/day; HPA + VPA + CA + per-tenant SLO accounting",
           kHosts, kParked));
  std::vector<WorkloadResult> results;
  results.push_back(run_policy("paper"));
  results.push_back(run_policy("static"));
  {
    Table table({"view", "tenant", "injected", "avail(‰)", "p99(ms)",
                 "budget(‰)", "burn(‰)", "SLO"});
    for (const WorkloadResult& r : results) {
      for (const TenantOutcome& o : r.tenants) {
        table.add_row(
            {r.name, o.tenant, std::to_string(o.injected),
             std::to_string(o.availability_permille),
             strf("%.2f", static_cast<double>(o.p99_us) / 1000.0),
             std::to_string(o.budget_remaining_permille),
             std::to_string(o.burn_rate_permille),
             o.attaining ? "attained" : "VIOLATED"});
      }
    }
    std::fputs(table.to_ascii().c_str(), stdout);
  }
  for (const WorkloadResult& r : results) {
    std::printf(
        "%s: injected %llu requests in %.1f ms wall; driver %.1f ms "
        "(%.2f%% overhead%s)\n",
        r.name.c_str(), static_cast<unsigned long long>(r.injected),
        r.total_wall_ms, r.driver_wall_ms, r.driver_overhead_pct,
        r.driver_overhead_pct < 10.0 ? ", within the <10% bar" : " — OVER");
  }
  std::printf(
      "expected: the paper view keeps both tenants inside their availability "
      "budgets through the flash crowd; under the static view the batch "
      "tenant's fixed-size pool cannot ride host slack and its error budget "
      "burns out.\n");

  write_json(results);
  arv::bench::register_case("million_user/paper", [] { run_policy("paper"); });
  arv::bench::register_case("million_user/static",
                            [] { run_policy("static"); });
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
