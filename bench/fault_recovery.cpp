// Fault recovery: what failures cost and how fast the control loops claw
// the fleet back.
//
// Three runs over the same 3-host fleet (router + failure detector +
// restart manager, three pinned web replicas plus background hogs):
//   baseline      - no faults; pins the availability/latency floor.
//   single_crash  - one host dies mid-run and reboots later; measures the
//                   detect->failover latency and the served fraction while
//                   degraded.
//   chaos         - a randomized FaultPlan (crashes, pod kills, memory
//                   pressure, monitor stalls); aggregate graceful-degradation
//                   counters.
//
// Results go to BENCH_faults.json (override with ARV_FAULTS_OUT).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/cluster/faults.h"
#include "src/cluster/pod_workloads.h"
#include "src/cluster/recovery.h"
#include "src/cluster/router.h"
#include "src/harness/scenario.h"

namespace {

using namespace arv;
using namespace arv::bench;

constexpr int kHosts = 3;
constexpr double kRate = 900;  // requests/sec, fleet-wide
constexpr SimDuration kRun = 20 * units::sec;

struct FaultResult {
  std::string name;
  std::uint64_t generated = 0;
  double availability_pct = 0;  ///< routed / generated
  double p95_ms = 0;
  std::uint64_t shed = 0;
  std::uint64_t dropped = 0;
  std::uint64_t unroutable = 0;
  std::uint64_t breaker_trips = 0;
  std::uint64_t restarts = 0;
  std::uint64_t failovers = 0;
  double failover_ms = -1;  ///< crash -> serving again; -1 when n/a
};

container::K8sResources res(std::int64_t millicpu, Bytes memory) {
  container::K8sResources r;
  r.request_millicpu = millicpu;
  r.request_memory = memory;
  return r;
}

/// The reference fleet every run starts from. Replicas are pinned one per
/// host so a host crash always leaves survivors.
std::unique_ptr<harness::FleetScenario> make_fleet() {
  cluster::ClusterConfig config;
  config.seed = 42;
  auto fleet = std::make_unique<harness::FleetScenario>(config);
  for (int i = 0; i < kHosts; ++i) {
    container::HostConfig host;
    host.cpus = 4;
    host.ram = 8 * units::GiB;
    fleet->add_host(host);
  }
  cluster::RouterConfig router;
  router.arrivals_per_sec = kRate;
  router.max_retries = 2;
  router.breaker_threshold = 5;
  router.breaker_open = 300 * units::msec;
  fleet->enable_router(router);
  cluster::DetectorConfig detector;
  detector.period = 100 * units::msec;
  detector.miss_threshold = 2;
  cluster::RestartConfig restart;
  restart.period = 50 * units::msec;
  restart.backoff_base = 100 * units::msec;
  restart.backoff_cap = 2 * units::sec;
  fleet->enable_recovery(detector, restart);
  server::WebConfig web;
  web.service_cpu = 6 * units::msec;
  web.max_queue = 100;
  for (int h = 0; h < kHosts; ++h) {
    const int pod = fleet->cluster().create_pod(
        h, {"web-" + std::to_string(h), res(1000, 1 * units::GiB)},
        cluster::web_replica(web));
    fleet->router()->add_replica(pod);
  }
  fleet->cluster().create_pod(0, {"hog", res(500, 512 * units::MiB)},
                              cluster::cpu_hog_workload(1, 60 * units::sec));
  fleet->cluster().create_pod(
      1, {"resident", res(500, 2 * units::GiB)},
      cluster::mem_hog_workload(1 * units::GiB, 4 * units::GiB));
  return fleet;
}

FaultResult harvest(const std::string& name, harness::FleetScenario& fleet) {
  const cluster::RequestRouter& router = *fleet.router();
  FaultResult result;
  result.name = name;
  result.generated = router.generated();
  result.availability_pct =
      result.generated == 0
          ? 100.0
          : 100.0 * static_cast<double>(router.routed()) /
                static_cast<double>(result.generated);
  result.p95_ms = router.aggregate().p95_ms();
  result.shed = router.shed();
  result.dropped = router.dropped();
  result.unroutable = router.unroutable();
  result.breaker_trips = router.breaker_trips();
  result.restarts = fleet.cluster().restarts();
  result.failovers = fleet.cluster().failovers();
  return result;
}

FaultResult run_baseline() {
  auto fleet = make_fleet();
  fleet->run(kRun);
  return harvest("baseline", *fleet);
}

FaultResult run_single_crash() {
  auto fleet = make_fleet();
  cluster::Cluster& cluster = fleet->cluster();
  fleet->run(5 * units::sec);

  // Kill the host under replica 0 and time the gap until that replica
  // serves again (detection + failover placement).
  const int victim_host = cluster.pod(0).host;
  cluster.crash_host(victim_host);
  const SimTime crashed = cluster.now();
  while (!cluster.pod(0).running() &&
         cluster.now() < crashed + 10 * units::sec) {
    cluster.step();
  }
  FaultResult interim;  // latency captured before the tail run
  interim.failover_ms = static_cast<double>(cluster.now() - crashed) /
                        static_cast<double>(units::msec);
  cluster.reboot_host(victim_host);
  if (cluster.now() < kRun) {
    fleet->run(kRun - cluster.now());  // out to the common horizon
  }
  FaultResult result = harvest("single_crash", *fleet);
  result.failover_ms = interim.failover_ms;
  return result;
}

FaultResult run_chaos() {
  auto fleet = make_fleet();
  Rng rng(0xfa017);
  cluster::ChaosOptions options;
  options.horizon = 10 * units::sec;
  options.host_crashes = 2;
  options.pod_crashes = 4;
  options.pressure_spikes = 2;
  options.monitor_stalls = 2;
  fleet->enable_faults(cluster::FaultPlan::random(
      rng, options, kHosts, fleet->cluster().pod_count()));
  fleet->run(kRun);
  return harvest("chaos", *fleet);
}

void write_json(const std::vector<FaultResult>& results) {
  const char* env = std::getenv("ARV_FAULTS_OUT");
  const std::string path =
      (env != nullptr && env[0] != '\0') ? env : "BENCH_faults.json";
  std::ofstream out(path);
  out << "{\n  \"bench\": \"fault_recovery\",\n"
      << strf("  \"fleet\": {\"hosts\": %d, \"rate_per_sec\": %.0f, "
              "\"run_s\": %lld},\n",
              kHosts, kRate, static_cast<long long>(kRun / units::sec))
      << "  \"runs\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const FaultResult& r = results[i];
    out << strf(
        "    {\"name\": \"%s\", \"generated\": %llu, "
        "\"availability_pct\": %.3f, \"p95_ms\": %.2f,\n"
        "     \"shed\": %llu, \"dropped\": %llu, \"unroutable\": %llu, "
        "\"breaker_trips\": %llu,\n"
        "     \"restarts\": %llu, \"failovers\": %llu, "
        "\"failover_ms\": %.1f}%s\n",
        r.name.c_str(), static_cast<unsigned long long>(r.generated),
        r.availability_pct, r.p95_ms,
        static_cast<unsigned long long>(r.shed),
        static_cast<unsigned long long>(r.dropped),
        static_cast<unsigned long long>(r.unroutable),
        static_cast<unsigned long long>(r.breaker_trips),
        static_cast<unsigned long long>(r.restarts),
        static_cast<unsigned long long>(r.failovers), r.failover_ms,
        i + 1 < results.size() ? "," : "");
  }
  out << "  ]\n}\n";
  if (!out) {
    std::fprintf(stderr, "fault_recovery: failed to write %s\n", path.c_str());
  } else {
    std::printf("wrote %s\n", path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  print_header("Fault recovery: availability under failures",
               strf("%d hosts, %.0f req/s; host crash, pod crash-loops, "
                    "memory pressure, monitor stalls",
                    kHosts, kRate));
  std::vector<FaultResult> results;
  results.push_back(run_baseline());
  results.push_back(run_single_crash());
  results.push_back(run_chaos());
  {
    Table table({"run", "avail(%)", "p95(ms)", "shed", "dropped", "unroutable",
                 "trips", "restarts", "failovers", "failover(ms)"});
    for (const FaultResult& r : results) {
      table.add_row({r.name, strf("%.3f", r.availability_pct),
                     strf("%.2f", r.p95_ms), std::to_string(r.shed),
                     std::to_string(r.dropped), std::to_string(r.unroutable),
                     std::to_string(r.breaker_trips),
                     std::to_string(r.restarts), std::to_string(r.failovers),
                     r.failover_ms < 0 ? "-" : strf("%.1f", r.failover_ms)});
    }
    std::fputs(table.to_ascii().c_str(), stdout);
  }
  std::printf(
      "expected: baseline serves ~100%%; single_crash recovers in well under "
      "a second and stays available; chaos degrades gracefully (shed, not "
      "lost) and converges.\n");

  write_json(results);
  arv::bench::register_case("fault_recovery/baseline", [] { run_baseline(); });
  arv::bench::register_case("fault_recovery/single_crash",
                            [] { run_single_crash(); });
  arv::bench::register_case("fault_recovery/chaos", [] { run_chaos(); });
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
