// Figure 9: big-data applications (HiBench) with large datasets — overall
// execution time and GC time for vanilla / dynamic / adaptive JDK 8.
// (HiBench is not compatible with JDK 9/10, so the paper's baseline is
// container-oblivious JDK 8.)
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"

namespace {

using namespace arv;
using namespace arv::bench;

void print_fig9() {
  print_header("Figure 9",
               "HiBench relative to vanilla JDK 8 (exec lower / gc lower is better)");
  Table table({"benchmark", "exec Vanilla", "exec Dynamic", "exec Adaptive",
               "gc Vanilla", "gc Dynamic", "gc Adaptive"});
  const auto stock = [](int, container::ContainerConfig& config) {
    config.enable_resource_view = false;
  };
  for (const auto& w : workloads::hibench_suite()) {
    jvm::JvmFlags vanilla{.kind = jvm::JvmKind::kVanilla8,
                          .dynamic_gc_threads = false,
                          .xmx = paper_xmx(w)};
    jvm::JvmFlags dynamic{.kind = jvm::JvmKind::kVanilla8,
                          .dynamic_gc_threads = true,
                          .xmx = paper_xmx(w)};
    jvm::JvmFlags adaptive{.kind = jvm::JvmKind::kAdaptive, .xmx = paper_xmx(w)};
    const auto rv = run_colocated(w, vanilla, 5, stock, 14400 * sec);
    const auto rd = run_colocated(w, dynamic, 5, stock, 14400 * sec);
    const auto ra = run_colocated(w, adaptive, 5, {}, 14400 * sec);
    table.add_row({w.name, "1.00", strf("%.2f", rd.mean_exec_s / rv.mean_exec_s),
                   strf("%.2f", ra.mean_exec_s / rv.mean_exec_s), "1.00",
                   strf("%.2f", rd.mean_gc_s / rv.mean_gc_s),
                   strf("%.2f", ra.mean_gc_s / rv.mean_gc_s)});
  }
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf(
      "paper shape: adaptive consistently below both vanilla and the static\n"
      "cgroups-based dynamic configuration; large heaps let GC scale, so the\n"
      "gains persist at big-data scale.\n");
}

}  // namespace

int main(int argc, char** argv) {
  print_fig9();
  arv::bench::register_case("fig9/kmeans/adaptive", [] {
    const auto w = workloads::hibench_suite()[2];
    run_colocated(w, {.kind = jvm::JvmKind::kAdaptive, .xmx = paper_xmx(w)}, 5,
                  {}, 14400 * sec);
  });
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
