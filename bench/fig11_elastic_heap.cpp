// Figure 11: avoiding memory overcommitment in DaCapo — vanilla JDK 8
// (heap sized from host RAM) vs the §4.2 elastic heap, in a container with
// a 1 GiB hard memory limit, no -Xmx, -Xms 500 MiB.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"

namespace {

using namespace arv;
using namespace arv::bench;

jvm::JvmStats run_fig11(const jvm::JavaWorkload& w, bool elastic) {
  harness::JvmScenario scenario(paper_host());
  harness::JvmInstanceConfig config;
  config.container.name = "dacapo";
  config.container.mem_limit = 1 * GiB;
  config.container.enable_resource_view = elastic;
  if (elastic) {
    config.flags.kind = jvm::JvmKind::kAdaptive;
    config.flags.elastic_heap = true;
    config.flags.heap_poll_interval = 200 * msec;  // compressed timescale
  } else {
    config.flags.kind = jvm::JvmKind::kVanilla8;  // max heap = phys/4 = 32 GiB
  }
  config.flags.xms = 500 * MiB;
  config.workload = w;
  const auto idx = scenario.add(config);
  scenario.try_run(14400 * sec);
  return scenario.jvm(idx).stats();
}

void print_fig11() {
  print_header("Figure 11",
               "elastic heap vs vanilla in a 1 GiB container (relative to "
               "vanilla; lower is better)");
  Table table({"benchmark", "exec Vanilla", "exec Elastic", "gc Vanilla",
               "gc Elastic", "vanilla swapped?"});
  for (const auto& w : workloads::dacapo_suite()) {
    const auto vanilla = run_fig11(w, false);
    const auto elastic = run_fig11(w, true);
    const double exec_rel = static_cast<double>(elastic.exec_time()) /
                            static_cast<double>(vanilla.exec_time());
    const double gc_rel =
        vanilla.gc_time() > 0 ? static_cast<double>(elastic.gc_time()) /
                                    static_cast<double>(vanilla.gc_time())
                              : 1.0;
    table.add_row({w.name, "1.00", strf("%.3f", exec_rel), "1.00",
                   strf("%.3f", gc_rel),
                   vanilla.stall_time > 0 ? "yes" : "no"});
  }
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf(
      "paper shape: benchmarks that stay under 1 GiB see no change; the\n"
      "allocation-heavy ones (lusearch, xalan) collapse into swap under\n"
      "vanilla and the elastic heap is an order of magnitude faster (at the\n"
      "cost of more frequent collections).\n");
}

}  // namespace

int main(int argc, char** argv) {
  print_fig11();
  arv::bench::register_case("fig11/xalan/elastic", [] {
    run_fig11(workloads::dacapo_suite()[4], true);
  });
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
