// Policy comparison: the Fig. 6 and Fig. 8 colocation scenarios re-run under
// every registered adaptation policy.
//
//   Fig. 6 shape: five identical containers with equal shares on 20 cores —
//   does the policy find the interference-free concurrency (paper ordering:
//   adaptive < static)?
//   Fig. 8 shape: one DaCapo container vs nine staggered CPU hogs — does the
//   effective view track the staircase of freed CPUs?
//
// Per policy we report exec/GC time, the final effective view, and the
// decision-reason mix (grew/shrank/clamped/reset/held), and write the lot to
// BENCH_policy.json (override the path with ARV_POLICY_OUT) for EXPERIMENTS.md.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/core/policy.h"
#include "src/workloads/java_suites.h"

namespace {

using namespace arv;
using namespace arv::bench;

struct PolicyResult {
  std::string policy;
  ColocatedResult fig6;
  double fig8_exec_s = 0;
  double fig8_gc_s = 0;
  int fig8_final_e_cpu = 0;
  core::DecisionCounters fig8_cpu;
  core::DecisionCounters fig8_mem;
};

ColocatedResult run_fig6_shape(const jvm::JavaWorkload& w,
                               const std::string& policy) {
  jvm::JvmFlags flags{.kind = jvm::JvmKind::kAdaptive, .xmx = paper_xmx(w)};
  return run_colocated(w, flags, 5,
                       [&](int, container::ContainerConfig& config) {
                         config.view_params.cpu_policy = policy;
                         config.view_params.mem_policy = policy;
                       },
                       7200 * sec, "policy_fig6_" + policy);
}

void run_fig8_shape(const jvm::JavaWorkload& w, const std::string& policy,
                    PolicyResult& result) {
  harness::JvmScenario scenario(paper_host());
  for (int i = 0; i < 9; ++i) {
    scenario.add_cpu_hog({}, 4, (i + 1) * sec);
  }
  harness::JvmInstanceConfig config;
  config.container.name = "dacapo";
  config.flags.kind = jvm::JvmKind::kAdaptive;
  config.flags.dynamic_gc_threads = false;  // the view is the only bound
  config.flags.xmx = paper_xmx(w);
  config.workload = w;
  config.use_policy(policy);
  const auto idx = scenario.add(config);
  scenario.run(7200 * sec);
  const auto view = scenario.runtime().find("dacapo")->resource_view();
  result.fig8_exec_s =
      static_cast<double>(scenario.jvm(idx).stats().exec_time()) / 1e6;
  result.fig8_gc_s =
      static_cast<double>(scenario.jvm(idx).stats().gc_time()) / 1e6;
  result.fig8_final_e_cpu = view->effective_cpus();
  result.fig8_cpu = view->cpu_decisions();
  result.fig8_mem = view->mem_decisions();
}

std::string decision_mix(const core::DecisionCounters& c) {
  return strf("%llu/%llu/%llu/%llu/%llu",
              static_cast<unsigned long long>(c.grew),
              static_cast<unsigned long long>(c.shrank),
              static_cast<unsigned long long>(c.clamped),
              static_cast<unsigned long long>(c.reset),
              static_cast<unsigned long long>(c.held));
}

void write_json(const std::vector<PolicyResult>& results) {
  const char* env = std::getenv("ARV_POLICY_OUT");
  const std::string path =
      (env != nullptr && env[0] != '\0') ? env : "BENCH_policy.json";
  std::ofstream out(path);
  out << "{\n  \"bench\": \"policy_compare\",\n  \"policies\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const PolicyResult& r = results[i];
    out << strf(
        "    {\"policy\": \"%s\",\n"
        "     \"fig6\": {\"mean_exec_s\": %.3f, \"mean_gc_s\": %.3f, "
        "\"completed\": %d},\n"
        "     \"fig8\": {\"exec_s\": %.3f, \"gc_s\": %.3f, "
        "\"final_e_cpu\": %d,\n"
        "              \"cpu_decisions\": {\"grew\": %llu, \"shrank\": %llu, "
        "\"clamped\": %llu, \"reset\": %llu, \"held\": %llu},\n"
        "              \"mem_decisions\": {\"grew\": %llu, \"shrank\": %llu, "
        "\"clamped\": %llu, \"reset\": %llu, \"held\": %llu}}}%s\n",
        r.policy.c_str(), r.fig6.mean_exec_s, r.fig6.mean_gc_s,
        r.fig6.completed, r.fig8_exec_s, r.fig8_gc_s, r.fig8_final_e_cpu,
        static_cast<unsigned long long>(r.fig8_cpu.grew),
        static_cast<unsigned long long>(r.fig8_cpu.shrank),
        static_cast<unsigned long long>(r.fig8_cpu.clamped),
        static_cast<unsigned long long>(r.fig8_cpu.reset),
        static_cast<unsigned long long>(r.fig8_cpu.held),
        static_cast<unsigned long long>(r.fig8_mem.grew),
        static_cast<unsigned long long>(r.fig8_mem.shrank),
        static_cast<unsigned long long>(r.fig8_mem.clamped),
        static_cast<unsigned long long>(r.fig8_mem.reset),
        static_cast<unsigned long long>(r.fig8_mem.held),
        i + 1 < results.size() ? "," : "");
  }
  out << "  ]\n}\n";
  if (!out) {
    std::fprintf(stderr, "policy_compare: failed to write %s\n", path.c_str());
  } else {
    std::printf("wrote %s\n", path.c_str());
  }
}

std::vector<PolicyResult> run_all() {
  const auto fig6_w = *workloads::find_java_workload("xalan");
  const auto fig8_w = workloads::dacapo_suite()[3];  // sunflow
  std::vector<PolicyResult> results;
  for (const auto& policy : core::PolicyRegistry::instance().cpu_names()) {
    PolicyResult r;
    r.policy = policy;
    r.fig6 = run_fig6_shape(fig6_w, policy);
    run_fig8_shape(fig8_w, policy, r);
    results.push_back(r);
  }
  return results;
}

void print_tables(const std::vector<PolicyResult>& results) {
  print_header("Policy compare: Fig. 6 shape",
               "5 colocated xalan JVMs, equal shares (exec seconds; the "
               "paper ordering has adaptive < static)");
  {
    Table table({"policy", "exec(s)", "gc(s)", "completed"});
    for (const PolicyResult& r : results) {
      table.add_row({r.policy, strf("%.2f", r.fig6.mean_exec_s),
                     strf("%.3f", r.fig6.mean_gc_s),
                     strf("%d/5", r.fig6.completed)});
    }
    std::fputs(table.to_ascii().c_str(), stdout);
  }
  print_header("Policy compare: Fig. 8 shape",
               "sunflow vs 9 staggered CPU hogs (does the view track the "
               "freed-CPU staircase?)");
  {
    Table table({"policy", "exec(s)", "gc(s)", "final E_CPU",
                 "cpu g/s/c/r/h", "mem g/s/c/r/h"});
    for (const PolicyResult& r : results) {
      table.add_row({r.policy, strf("%.2f", r.fig8_exec_s),
                     strf("%.3f", r.fig8_gc_s),
                     std::to_string(r.fig8_final_e_cpu),
                     decision_mix(r.fig8_cpu), decision_mix(r.fig8_mem)});
    }
    std::fputs(table.to_ascii().c_str(), stdout);
  }
  std::printf(
      "expected: every adaptive policy beats \"static\" on both shapes;\n"
      "\"ewma\" trades a slower Fig. 8 ramp for fewer oscillations,\n"
      "\"proportional\" ramps fastest but overshoots into clamps.\n");
}

}  // namespace

int main(int argc, char** argv) {
  const auto results = run_all();
  print_tables(results);
  write_json(results);
  for (const auto& policy : core::PolicyRegistry::instance().cpu_names()) {
    arv::bench::register_case("policy_compare/fig6/" + policy, [policy] {
      run_fig6_shape(*workloads::find_java_workload("xalan"), policy);
    });
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
