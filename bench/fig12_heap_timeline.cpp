// Figure 12: used / committed / VirtualMax over time for the §5.3
// allocation micro-benchmark (40,000 iterations of +1 MiB / -512 KiB) in
// containers with a 30 GiB hard and 15 GiB soft memory limit.
//
//   (a) single container, vanilla JVM (JDK 10-style, limits known at launch)
//   (b) single container, elastic JVM
//   (c) five colocated containers, elastic JVMs
//   (+) five colocated vanilla JVMs — the configuration the paper reports
//       as unable to complete at all.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"

namespace {

using namespace arv;
using namespace arv::bench;

harness::JvmInstanceConfig micro_config(const std::string& name, bool elastic) {
  harness::JvmInstanceConfig config;
  config.container.name = name;
  config.container.mem_limit = 30 * GiB;
  config.container.mem_soft_limit = 15 * GiB;
  config.container.enable_resource_view = elastic;
  config.workload = workloads::alloc_microbench();
  if (elastic) {
    config.flags.kind = jvm::JvmKind::kAdaptive;
    config.flags.elastic_heap = true;
    config.flags.heap_poll_interval = 500 * msec;
  } else {
    // "The JVM used was from JDK 10 with awareness on memory limits",
    // -Xmx at the hard limit, initial heap one quarter of it.
    config.flags.kind = jvm::JvmKind::kJdk10;
    config.flags.xmx = 30 * GiB;
    config.flags.xms = 30 * GiB / 4;
  }
  return config;
}

void print_series(const std::vector<jvm::HeapSample>& samples) {
  std::printf("time_s,used_gib,committed_gib,virtualmax_gib\n");
  const std::size_t stride = std::max<std::size_t>(1, samples.size() / 30);
  for (std::size_t i = 0; i < samples.size(); i += stride) {
    const auto& s = samples[i];
    std::printf("%.1f,%.2f,%.2f,%.2f\n", static_cast<double>(s.when) / 1e6,
                static_cast<double>(s.used) / static_cast<double>(GiB),
                static_cast<double>(s.committed) / static_cast<double>(GiB),
                static_cast<double>(s.virtual_max) / static_cast<double>(GiB));
  }
}

void run_single(bool elastic, const char* figure, const char* label,
                const char* trace_label) {
  print_header(figure, label);
  harness::JvmScenario scenario(paper_host());
  const auto idx = scenario.add(micro_config("solo", elastic));
  harness::HeapTimeline timeline(scenario.host(), scenario.jvm(idx), 2 * sec);
  const bool done = scenario.try_run(14400 * sec);
  maybe_dump_trace(scenario.host(), trace_label);
  print_series(timeline.samples());
  const auto& stats = scenario.jvm(idx).stats();
  std::printf("completed=%s exec=%.1fs minor_gcs=%d major_gcs=%d\n",
              done && stats.completed ? "yes" : "no",
              static_cast<double>(stats.exec_time()) / 1e6, stats.minor_gcs,
              stats.major_gcs);
}

void run_five(bool elastic, const char* figure, const char* label,
              const char* trace_label) {
  print_header(figure, label);
  harness::JvmScenario scenario(paper_host());
  std::vector<std::size_t> ids;
  for (int i = 0; i < 5; ++i) {
    ids.push_back(scenario.add(micro_config("c" + std::to_string(i), elastic)));
  }
  harness::HeapTimeline timeline(scenario.host(), scenario.jvm(ids[0]), 2 * sec);
  const bool done = scenario.try_run(elastic ? 14400 * sec : 1200 * sec);
  maybe_dump_trace(scenario.host(), trace_label);
  print_series(timeline.samples());
  int completed = 0;
  double committed_total = 0;
  for (const std::size_t id : ids) {
    completed += scenario.jvm(id).stats().completed ? 1 : 0;
    committed_total += static_cast<double>(scenario.jvm(id).heap().committed()) /
                       static_cast<double>(GiB);
  }
  std::printf("completed=%d/5 (deadline%s hit) mean_committed=%.1f GiB "
              "oom_kills=%llu swapped=%s\n",
              completed, done ? " not" : "", committed_total / 5.0,
              static_cast<unsigned long long>(scenario.host().memory().oom_kills()),
              scenario.host().memory().swapped(1) > 0 ? "yes" : "no");
}

}  // namespace

int main(int argc, char** argv) {
  run_single(false, "Figure 12(a)", "single container, vanilla JVM",
             "fig12a_vanilla_single");
  run_single(true, "Figure 12(b)", "single container, elastic JVM",
             "fig12b_elastic_single");
  run_five(true, "Figure 12(c)", "five containers, elastic JVMs",
           "fig12c_elastic_five");
  run_five(false, "Figure 12(+)", "five containers, vanilla JVMs (paper: none complete)",
           "fig12x_vanilla_five");
  std::printf(
      "\npaper shape: (a) vanilla expands straight to the 30 GiB hard limit;\n"
      "(b) elastic starts low and ramps with effective memory, converging to\n"
      "the hard limit; (c) five elastic JVMs settle at a sustainable size\n"
      "(~24 GiB in the paper) and all complete, while five vanilla JVMs\n"
      "thrash against 128 GiB of RAM and complete nothing.\n");

  arv::bench::register_case("fig12/single_elastic", [] {
    harness::JvmScenario scenario(paper_host());
    scenario.add(micro_config("solo", true));
    scenario.try_run(14400 * sec);
  });
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
