// Figure 2: the impact of container resource constraints on Java
// performance (the paper's motivating experiments).
//
//   (a) GC-thread misconfiguration: 5 containers on 20 cores, each with a
//       10-core CPU limit and equal shares, running the same DaCapo
//       benchmark. Auto JDK 8/9 vs hand-optimized (4 GC threads).
//   (b) Heap misconfiguration: one container with a 1 GiB hard / 500 MiB
//       soft limit on a 128 GiB host under background memory pressure.
//       Hard/Soft-tuned JDK 8 vs auto JDK 8 (heap = phys/4 = 32 GiB) vs
//       auto JDK 9 (heap = hard/4 = 256 MiB).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"

namespace {

using namespace arv;
using namespace arv::bench;

double exec_fig2a(const jvm::JavaWorkload& w, jvm::JvmFlags flags) {
  flags.xmx = paper_xmx(w);
  const auto result =
      run_colocated(w, flags, 5, [](int, container::ContainerConfig& config) {
        config.cfs_quota_us = 1000000;  // 10-core CPU limit
        config.enable_resource_view = false;  // stock kernel in Figure 2
      });
  return result.mean_exec_s;
}

void print_fig2a() {
  print_header("Figure 2(a)",
               "GC-thread configuration, normalized to Auto_JVM9 (lower is better)");
  Table table({"benchmark", "Auto_JVM9", "Opt_JVM9", "Auto_JVM8", "Opt_JVM8"});
  for (const auto& w : workloads::dacapo_suite()) {
    const double auto9 = exec_fig2a(w, {.kind = jvm::JvmKind::kJdk9});
    const double opt9 = exec_fig2a(
        w, {.kind = jvm::JvmKind::kOptTuned, .fixed_gc_threads = 4});
    const double auto8 = exec_fig2a(
        w, {.kind = jvm::JvmKind::kVanilla8, .dynamic_gc_threads = false});
    const double opt8 = exec_fig2a(
        w, {.kind = jvm::JvmKind::kOptTuned, .fixed_gc_threads = 4});
    table.add_row({w.name, "1.00", strf("%.2f", opt9 / auto9),
                   strf("%.2f", auto8 / auto9), strf("%.2f", opt8 / auto9)});
  }
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf(
      "paper shape: Opt (4 threads) clearly below Auto; JDK9's static 10-core\n"
      "limit barely helps because the effective capacity is 4 cores.\n");
}

jvm::JvmStats run_fig2b(const jvm::JavaWorkload& w, jvm::JvmFlags flags) {
  harness::JvmScenario scenario(paper_host());
  harness::JvmInstanceConfig config;
  config.container.name = "victim";
  config.container.mem_limit = 1 * GiB;
  config.container.mem_soft_limit = 500 * MiB;
  config.container.enable_resource_view = false;
  config.flags = flags;
  config.workload = w;
  // "We also ran a memory-intensive workload in the background to cause
  // memory shortage on the machine." Modeled as an already-resident
  // allocation so the shortage exists for the whole benchmark run.
  scenario.host().memory().reserve_host_memory(124 * GiB);
  const auto idx = scenario.add(config);
  scenario.try_run(7200 * sec);
  return scenario.jvm(idx).stats();
}

void print_fig2b() {
  print_header("Figure 2(b)",
               "heap configuration under memory pressure, normalized to "
               "Hard_JVM8 (lower is better; OOM = crash)");
  Table table({"benchmark", "Hard_JVM8", "Soft_JVM8", "Auto_JVM8", "Auto_JVM9"});
  for (const auto& w : workloads::dacapo_suite()) {
    const auto hard =
        run_fig2b(w, {.kind = jvm::JvmKind::kVanilla8, .xmx = 1 * GiB});
    const auto soft =
        run_fig2b(w, {.kind = jvm::JvmKind::kVanilla8, .xmx = 500 * MiB});
    const auto auto8 = run_fig2b(w, {.kind = jvm::JvmKind::kVanilla8});
    const auto auto9 = run_fig2b(w, {.kind = jvm::JvmKind::kJdk9});
    const double base = static_cast<double>(hard.exec_time());
    auto cell = [&](const jvm::JvmStats& stats) -> std::string {
      if (stats.oom_error) {
        return "OOM";
      }
      if (!stats.completed) {
        return "hung";
      }
      return strf("%.2f", static_cast<double>(stats.exec_time()) / base);
    };
    table.add_row({w.name, cell(hard), cell(soft), cell(auto8), cell(auto9)});
  }
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf(
      "paper shape: Soft best (no reclaim), Auto_JVM8 collapses into swap on\n"
      "allocation-heavy benchmarks, Auto_JVM9 OOMs on h2 (256 MiB heap).\n");
}

}  // namespace

int main(int argc, char** argv) {
  print_fig2a();
  print_fig2b();
  arv::bench::register_case("fig2a/h2/auto_jvm8", [] {
    exec_fig2a(workloads::dacapo_suite()[0],
               {.kind = jvm::JvmKind::kVanilla8, .dynamic_gc_threads = false});
  });
  arv::bench::register_case("fig2b/h2/auto_jvm9", [] {
    run_fig2b(workloads::dacapo_suite()[0], {.kind = jvm::JvmKind::kJdk9});
  });
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
