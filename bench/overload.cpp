// Overload control plane: goodput under a load sweep, guards off vs on.
//
// A fixed fleet (no autoscaling, so capacity is a constant) serves two
// tenants: a small, steady "critical" flow (SLO 99.9%) and a "besteffort"
// flood whose offered rate sweeps from well below saturation to 3x past it.
// Each sweep point runs twice over the same compiled trace:
//
//   guards off — the plain router: retries, breakers, and a deep (5000)
//     accept queue. Past saturation the queues fill with requests that will
//     all complete *late*: classic congestion collapse, where throughput
//     holds but goodput (completions inside the tenant's latency deadline)
//     falls off a cliff.
//   guards on  — the admission controller arms every guard: criticality
//     shedding rejects the best-effort excess at the front door, AIMD
//     concurrency limits keep per-replica queues shallow, the retry budget
//     bounds amplification, and brownout cheapens responses under pressure.
//
// Expected, and checked by the summary verdicts: with guards off, goodput
// past saturation collapses more than 50% below its peak; with guards on,
// the critical tenant's goodput stays within 10% of its own peak at every
// sweep point and its SLO is attained throughout.
//
// Results go to BENCH_overload.json (override with ARV_OVERLOAD_OUT).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/cluster/overload.h"
#include "src/cluster/pod_workloads.h"
#include "src/cluster/router.h"
#include "src/harness/scenario.h"
#include "src/load/driver.h"
#include "src/load/slo.h"
#include "src/load/trace_spec.h"

namespace {

using namespace arv;
using namespace arv::bench;

constexpr int kHosts = 4;
constexpr SimDuration kTraceLen = 6 * units::sec;
constexpr SimDuration kRunFor = 7 * units::sec;  // 1 s drain tail
constexpr int kCritRps = 400;                    // constant critical flow
// Total offered rates swept; the fleet saturates between the 2nd and 3rd
// points (measured — see the printed table), so the tail of the sweep is
// firmly past saturation.
constexpr int kSweepRps[] = {1200, 2400, 3600, 4800, 7200};

container::K8sResources res(std::int64_t millicpu, Bytes memory) {
  container::K8sResources r;
  r.request_millicpu = millicpu;
  r.request_memory = memory;
  return r;
}

load::TraceSpec sweep_spec(int total_rps) {
  load::TraceSpec spec;
  spec.duration = kTraceLen;
  spec.slot = 100 * units::msec;
  spec.mean_rps = total_rps;
  spec.diurnal_amplitude = 0.0;  // steady state: the sweep is the variable
  spec.seed = 2019;
  // Tenant weights are proportions of mean_rps: pinning the critical share
  // to kCritRps/total keeps the critical flow constant across the sweep
  // while the best-effort flood does all the growing.
  spec.tenants.push_back(
      {"critical", static_cast<double>(kCritRps), 1 * units::msec,
       4 * units::msec, 1.3});
  spec.tenants.push_back(
      {"besteffort", static_cast<double>(total_rps - kCritRps),
       1 * units::msec, 4 * units::msec, 1.3});
  return spec;
}

struct TenantPoint {
  std::string tenant;
  std::uint64_t generated = 0;
  std::uint64_t completed = 0;
  std::uint64_t timely = 0;  // completed inside the tenant's p99 target
  std::uint64_t degraded = 0;
  std::uint64_t rejected = 0;
  std::int64_t availability_permille = 0;
  std::int64_t p99_us = 0;
  bool attaining = false;
  double goodput_rps = 0;
};

struct SweepPoint {
  int offered_rps = 0;
  bool guards = false;
  double total_goodput_rps = 0;
  std::uint64_t shed_total = 0;
  std::uint64_t rejected_total = 0;
  std::uint64_t dropped_total = 0;
  std::vector<TenantPoint> tenants;
};

SweepPoint run_point(int total_rps, bool guards) {
  cluster::ClusterConfig config;
  config.seed = 42;
  harness::FleetScenario fleet(config);
  for (int i = 0; i < kHosts; ++i) {
    container::HostConfig host;
    host.cpus = 4;
    host.ram = 8 * units::GiB;
    fleet.add_host(host);
  }

  cluster::RouterConfig rc;
  rc.max_retries = 2;
  // Breakers target replica death, not queue refusals: a low threshold would
  // blackout a healthy-but-limited replica for the whole open window every
  // time the AIMD limit refuses a burst, idling its workers.
  rc.breaker_threshold = 200;
  rc.breaker_open = 100 * units::msec;
  fleet.add_tenant("critical", rc);
  fleet.add_tenant("besteffort", rc);

  server::WebConfig web;
  web.service_cpu = 2 * units::msec;
  // Deep accept queues: with guards off this is the congestion-collapse
  // reservoir; with guards on the AIMD limit keeps the effective depth small.
  web.max_queue = 5000;
  for (int i = 0; i < 2; ++i) {
    if (fleet.place_tenant_web_pod("critical", res(1000, 1 * units::GiB),
                                   web) < 0 ||
        fleet.place_tenant_web_pod("besteffort", res(1000, 1 * units::GiB),
                                   web) < 0) {
      std::fprintf(stderr, "overload: replica placement failed\n");
      std::exit(1);
    }
  }

  if (guards) {
    cluster::AdmissionConfig ac;
    // The default references are sized for interactive fleets; this sweep's
    // best-effort deadline is a full second, so let queues run deeper before
    // the shed bands engage.
    ac.queue_ref_depth = 128;
    ac.p99_ref = 500 * units::msec;
    fleet.enable_admission(ac);
  }
  load::DriverConfig one_pass;
  one_pass.repeat = false;
  fleet.use_trace(load::compile(sweep_spec(total_rps)), one_pass);

  load::SloTarget crit_slo;
  crit_slo.availability_permille = 999;
  crit_slo.p99_target = 250 * units::msec;
  // The critical tier's brownout response is essential-only but contractually
  // complete (recommendations off, page still served): degraded replies spend
  // none of its error budget. The best-effort flood books them at the
  // default half-failure weight.
  crit_slo.degraded_weight_permille = 0;
  load::SloTarget be_slo;
  be_slo.availability_permille = 900;
  be_slo.p99_target = 1 * units::sec;
  fleet.declare_slo("critical", crit_slo);
  fleet.declare_slo("besteffort", be_slo);

  fleet.run(kRunFor);

  SweepPoint point;
  point.offered_rps = total_rps;
  point.guards = guards;
  const double window_s =
      static_cast<double>(kTraceLen) / static_cast<double>(units::sec);
  const struct {
    const char* name;
    SimDuration deadline;
  } tenants[] = {{"critical", crit_slo.p99_target},
                 {"besteffort", be_slo.p99_target}};
  for (const auto& t : tenants) {
    const cluster::RequestRouter& r = *fleet.tenant_router(t.name);
    const server::RequestStats agg = r.aggregate();
    TenantPoint out;
    out.tenant = t.name;
    out.generated = r.generated();
    out.completed = agg.completed;
    const std::uint64_t late = agg.latency_hist.count_above(t.deadline);
    out.timely = agg.completed - std::min<std::uint64_t>(agg.completed, late);
    out.degraded = r.degraded();
    out.rejected = r.rejected();
    out.availability_permille = fleet.slo()->availability_permille(t.name);
    out.p99_us = fleet.slo()->p99_us(t.name);
    out.attaining = fleet.slo()->attaining(t.name);
    out.goodput_rps = static_cast<double>(out.timely) / window_s;
    point.total_goodput_rps += out.goodput_rps;
    point.rejected_total += out.rejected;
    point.shed_total += r.shed();
    point.dropped_total += r.dropped();
    point.tenants.push_back(out);
  }
  return point;
}

const TenantPoint& tenant_of(const SweepPoint& p, const std::string& name) {
  for (const TenantPoint& t : p.tenants) {
    if (t.tenant == name) {
      return t;
    }
  }
  std::fprintf(stderr, "overload: no tenant %s\n", name.c_str());
  std::exit(1);
}

struct Summary {
  double off_peak_goodput = 0;
  double off_min_past_peak = 0;
  double off_collapse_pct = 0;  // how far below peak the worst point fell
  double on_crit_peak = 0;
  double on_crit_min = 0;
  double on_crit_drop_pct = 0;
  bool on_crit_attained_all = true;
  bool off_collapsed = false;  // > 50% below peak
  bool on_crit_held = false;   // within 10% of peak, SLO attained throughout
};

Summary summarize(const std::vector<SweepPoint>& points) {
  Summary s;
  std::size_t off_peak_at = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (points[i].guards) {
      continue;
    }
    if (points[i].total_goodput_rps > s.off_peak_goodput) {
      s.off_peak_goodput = points[i].total_goodput_rps;
      off_peak_at = i;
    }
  }
  s.off_min_past_peak = s.off_peak_goodput;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (points[i].guards || i <= off_peak_at) {
      continue;
    }
    s.off_min_past_peak =
        std::min(s.off_min_past_peak, points[i].total_goodput_rps);
  }
  s.off_collapse_pct =
      s.off_peak_goodput <= 0
          ? 0
          : 100.0 * (1.0 - s.off_min_past_peak / s.off_peak_goodput);
  s.off_collapsed = s.off_collapse_pct > 50.0;

  s.on_crit_min = -1;
  for (const SweepPoint& p : points) {
    if (!p.guards) {
      continue;
    }
    const TenantPoint& crit = tenant_of(p, "critical");
    s.on_crit_peak = std::max(s.on_crit_peak, crit.goodput_rps);
    s.on_crit_min = s.on_crit_min < 0
                        ? crit.goodput_rps
                        : std::min(s.on_crit_min, crit.goodput_rps);
    s.on_crit_attained_all = s.on_crit_attained_all && crit.attaining;
  }
  s.on_crit_drop_pct =
      s.on_crit_peak <= 0 ? 0
                          : 100.0 * (1.0 - s.on_crit_min / s.on_crit_peak);
  s.on_crit_held = s.on_crit_drop_pct <= 10.0 && s.on_crit_attained_all;
  return s;
}

void write_json(const std::vector<SweepPoint>& points, const Summary& s) {
  const char* env = std::getenv("ARV_OVERLOAD_OUT");
  const std::string path =
      (env != nullptr && env[0] != '\0') ? env : "BENCH_overload.json";
  std::ofstream out(path);
  out << "{\n  \"bench\": \"overload\",\n"
      << strf("  \"fleet\": {\"hosts\": %d, \"replicas_per_tenant\": 2, "
              "\"critical_rps\": %d, \"trace_s\": %lld},\n",
              kHosts, kCritRps,
              static_cast<long long>(kTraceLen / units::sec))
      << "  \"sweep\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    out << strf(
        "    {\"offered_rps\": %d, \"guards\": %s, "
        "\"total_goodput_rps\": %.1f, \"shed\": %llu, \"rejected\": %llu, "
        "\"dropped\": %llu,\n"
        "     \"tenants\": [\n",
        p.offered_rps, p.guards ? "true" : "false", p.total_goodput_rps,
        static_cast<unsigned long long>(p.shed_total),
        static_cast<unsigned long long>(p.rejected_total),
        static_cast<unsigned long long>(p.dropped_total));
    for (std::size_t t = 0; t < p.tenants.size(); ++t) {
      const TenantPoint& o = p.tenants[t];
      out << strf(
          "      {\"tenant\": \"%s\", \"generated\": %llu, "
          "\"completed\": %llu, \"timely\": %llu, \"degraded\": %llu, "
          "\"rejected\": %llu, \"goodput_rps\": %.1f, "
          "\"availability_permille\": %lld, \"p99_us\": %lld, "
          "\"attaining\": %s}%s\n",
          o.tenant.c_str(), static_cast<unsigned long long>(o.generated),
          static_cast<unsigned long long>(o.completed),
          static_cast<unsigned long long>(o.timely),
          static_cast<unsigned long long>(o.degraded),
          static_cast<unsigned long long>(o.rejected), o.goodput_rps,
          static_cast<long long>(o.availability_permille),
          static_cast<long long>(o.p99_us), o.attaining ? "true" : "false",
          t + 1 < p.tenants.size() ? "," : "");
    }
    out << strf("     ]}%s\n", i + 1 < points.size() ? "," : "");
  }
  out << "  ],\n  \"summary\": {\n"
      << strf("    \"guards_off_peak_goodput_rps\": %.1f,\n"
              "    \"guards_off_min_past_peak_rps\": %.1f,\n"
              "    \"guards_off_collapse_pct\": %.1f,\n"
              "    \"guards_off_collapsed\": %s,\n"
              "    \"guards_on_critical_peak_rps\": %.1f,\n"
              "    \"guards_on_critical_min_rps\": %.1f,\n"
              "    \"guards_on_critical_drop_pct\": %.1f,\n"
              "    \"guards_on_critical_slo_attained_all\": %s,\n"
              "    \"guards_on_critical_held\": %s\n",
              s.off_peak_goodput, s.off_min_past_peak, s.off_collapse_pct,
              s.off_collapsed ? "true" : "false", s.on_crit_peak,
              s.on_crit_min, s.on_crit_drop_pct,
              s.on_crit_attained_all ? "true" : "false",
              s.on_crit_held ? "true" : "false")
      << "  }\n}\n";
  if (!out) {
    std::fprintf(stderr, "overload: failed to write %s\n", path.c_str());
  } else {
    std::printf("wrote %s\n", path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  print_header(
      "Overload sweep: goodput with the control plane off vs on",
      strf("%d hosts, 2+2 replicas, critical flow pinned at %d rps, "
           "best-effort flood swept to 3x past saturation; goodput = "
           "completions inside the tenant's p99 target",
           kHosts, kCritRps));

  std::vector<SweepPoint> points;
  for (const int rps : kSweepRps) {
    points.push_back(run_point(rps, /*guards=*/false));
    points.push_back(run_point(rps, /*guards=*/true));
  }
  const Summary s = summarize(points);

  Table table({"offered", "guards", "goodput", "crit good", "crit avail(‰)",
               "crit SLO", "be good", "refused"});
  for (const SweepPoint& p : points) {
    const TenantPoint& crit = tenant_of(p, "critical");
    const TenantPoint& be = tenant_of(p, "besteffort");
    table.add_row({std::to_string(p.offered_rps), p.guards ? "on" : "off",
                   strf("%.0f", p.total_goodput_rps),
                   strf("%.0f", crit.goodput_rps),
                   std::to_string(crit.availability_permille),
                   crit.attaining ? "attained" : "VIOLATED",
                   strf("%.0f", be.goodput_rps),
                   std::to_string(p.shed_total + p.rejected_total +
                                  p.dropped_total)});
  }
  std::fputs(table.to_ascii().c_str(), stdout);

  std::printf(
      "guards off: peak goodput %.0f rps, worst past-saturation point "
      "%.0f rps — a %.0f%% collapse (%s the >50%% bar)\n",
      s.off_peak_goodput, s.off_min_past_peak, s.off_collapse_pct,
      s.off_collapsed ? "clears" : "MISSES");
  std::printf(
      "guards on: critical goodput stays in [%.0f, %.0f] rps (%.1f%% below "
      "peak, %s the <=10%% bar), SLO %s at every sweep point\n",
      s.on_crit_min, s.on_crit_peak, s.on_crit_drop_pct,
      s.on_crit_held ? "clears" : "MISSES",
      s.on_crit_attained_all ? "attained" : "VIOLATED");

  write_json(points, s);
  arv::bench::register_case("overload/guards_off_3x",
                            [] { run_point(kSweepRps[4], false); });
  arv::bench::register_case("overload/guards_on_3x",
                            [] { run_point(kSweepRps[4], true); });
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
