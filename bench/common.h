// Shared plumbing for the figure-reproduction benches.
//
// Every bench binary follows the same pattern: run the paper's scenario on
// the simulated 20-core / 128 GiB testbed, collect per-configuration
// results, and print the figure's rows as an ASCII table (plus CSV for the
// series figures). The scenario runs are also registered as google-benchmark
// cases so `--benchmark_filter` / JSON output work as usual.
#pragma once

#include <benchmark/benchmark.h>

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/harness/scenario.h"
#include "src/util/str.h"
#include "src/util/table.h"
#include "src/workloads/java_suites.h"

namespace arv::bench {

using namespace arv::units;

/// Where figure runs dump their full traces: the ARV_TRACE_DIR environment
/// variable, or nullopt when unset/empty (tracing then stays off).
std::optional<std::string> trace_dump_dir();

/// Writes <ARV_TRACE_DIR>/<label>.csv and .json for a traced host; no-op
/// when ARV_TRACE_DIR is unset or the host was built without tracing.
void maybe_dump_trace(const container::Host& host, const std::string& label);

/// The paper's testbed (§5.1): PowerEdge R730, dual 10-core Xeon, 128 GB.
/// Tracing is enabled (100 ms sampling) iff ARV_TRACE_DIR is set — the
/// observability layer is observation-only, so figure results are identical
/// either way.
inline container::HostConfig paper_host() {
  container::HostConfig config;
  config.cpus = 20;
  config.ram = 128 * GiB;
  if (trace_dump_dir().has_value()) {
    config.enable_tracing = true;
    config.trace.sample_interval = 100 * msec;
  }
  return config;
}

struct ColocatedResult {
  double mean_exec_s = 0;  ///< mean execution time, simulated seconds
  double mean_gc_s = 0;    ///< mean STW GC time
  int completed = 0;
  int oom_errors = 0;
  int killed = 0;
};

/// Runs `n` identical containers, each executing `workload` under `flags`.
/// `tweak` may adjust each container config (limits, cpusets, view on/off).
/// A non-empty `trace_label` dumps the run's trace (see maybe_dump_trace).
ColocatedResult run_colocated(
    const jvm::JavaWorkload& workload, const jvm::JvmFlags& flags, int n,
    const std::function<void(int, container::ContainerConfig&)>& tweak = {},
    SimDuration deadline = 7200 * sec, const std::string& trace_label = {});

/// Shorthand for the §5.1 heap sizing rule (-Xmx = 3x min heap).
inline Bytes paper_xmx(const jvm::JavaWorkload& w) { return 3 * jvm::min_heap_of(w); }

/// Registers a no-op google-benchmark case that executes `fn` once per
/// iteration, so every scenario is individually runnable/filterable.
void register_case(const std::string& name, std::function<void()> fn);

/// Prints a section header in the bench output.
void print_header(const std::string& figure, const std::string& description);

}  // namespace arv::bench
