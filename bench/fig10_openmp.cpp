// Figure 10: NAS Parallel Benchmarks under the three OpenMP thread-count
// strategies (static / dynamic / adaptive).
//
//   (a) five containers with equal shares, each running the same program
//   (b) one container with a CPU quota equivalent to 4 cores
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"
#include "src/workloads/npb.h"

namespace {

using namespace arv;
using namespace arv::bench;

double run_npb(const omp::OmpWorkload& w, omp::TeamStrategy strategy,
               int containers, bool quota4, bool view) {
  harness::OmpScenario scenario(paper_host());
  // §5.1 methodology: each result is the average of 10 runs, so the 15-min
  // loadavg window is saturated with the previous repetitions' threads by
  // the time any run starts. Seed it accordingly (static teams = 20/cont.).
  scenario.host().scheduler().seed_loadavg(20.0 * containers);
  std::vector<std::size_t> ids;
  for (int i = 0; i < containers; ++i) {
    harness::OmpInstanceConfig config;
    config.container.name = "npb" + std::to_string(i);
    config.container.enable_resource_view = view;
    if (quota4) {
      config.container.cfs_quota_us = 400000;
    }
    config.strategy = strategy;
    config.workload = w;
    ids.push_back(scenario.add(config));
  }
  scenario.run(14400 * sec);
  double total = 0;
  for (const std::size_t id : ids) {
    total += static_cast<double>(scenario.process(id).stats().exec_time()) / 1e6;
  }
  return total / static_cast<double>(containers);
}

void print_scenario(const char* figure, const char* description, int containers,
                    bool quota4) {
  print_header(figure, description);
  Table table({"benchmark", "Static", "Dynamic", "Adaptive"});
  for (const auto& w : workloads::npb_suite()) {
    const double st = run_npb(w, omp::TeamStrategy::kStatic, containers, quota4,
                              /*view=*/false);
    const double dy = run_npb(w, omp::TeamStrategy::kDynamic, containers, quota4,
                              /*view=*/false);
    const double ad = run_npb(w, omp::TeamStrategy::kAdaptive, containers, quota4,
                              /*view=*/true);
    table.add_row({w.name, "1.00", strf("%.2f", dy / st), strf("%.2f", ad / st)});
  }
  std::fputs(table.to_ascii().c_str(), stdout);
}

}  // namespace

int main(int argc, char** argv) {
  print_scenario("Figure 10(a)",
                 "five containers, equal shares — exec time normalized to "
                 "static (lower is better)",
                 5, /*quota4=*/false);
  std::printf(
      "paper shape: dynamic is the WORST (host-wide loadavg strangles teams);\n"
      "adaptive clearly under static.\n");
  print_scenario("Figure 10(b)",
                 "one container with a 4-core quota — exec time normalized to "
                 "static (lower is better)",
                 1, /*quota4=*/true);
  std::printf(
      "paper shape: dynamic launches host-sized teams into a 4-CPU container\n"
      "and loses; adaptive sizes teams to the 4 effective CPUs and wins.\n");

  arv::bench::register_case("fig10a/cg/adaptive", [] {
    run_npb(*workloads::find_npb("cg"), omp::TeamStrategy::kAdaptive, 5, false,
            true);
  });
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
